package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/costfn"
	"repro/internal/sim"
)

func kinds(p arch.Program) map[arch.BarrierKind]int {
	m := map[arch.BarrierKind]int{}
	for _, in := range p.Code {
		if in.Op == arch.Barrier {
			m[in.Kind]++
		}
	}
	return m
}

// TestMacroLoweringARM checks the default ARM lowering: smp_mb → dmb ish,
// read_once / write_once / read_barrier_depends → compiler barriers only.
func TestMacroLoweringARM(t *testing.T) {
	k := New(Config{Prof: arch.ARMv8(), Strategy: Default()})
	b := arch.NewBuilder()
	k.SmpMB(b)
	if got := kinds(b.MustBuild()); got[arch.DMBIsh] != 1 {
		t.Errorf("smp_mb: %v", got)
	}
	b = arch.NewBuilder()
	k.ReadOnce(b, 2, 1, 0)
	p := b.MustBuild()
	if len(kinds(p)) != 0 || p.Len() != 1 {
		t.Errorf("read_once should be a bare load, got %v", p.Code)
	}
	b = arch.NewBuilder()
	k.ReadBarrierDepends(b, 2)
	if p := b.MustBuild(); p.Len() != 0 {
		t.Errorf("default read_barrier_depends should emit nothing, got %v", p.Code)
	}
	b = arch.NewBuilder()
	k.SmpRmb(b)
	if got := kinds(b.MustBuild()); got[arch.DMBIshLd] != 1 {
		t.Errorf("smp_rmb: %v", got)
	}
	b = arch.NewBuilder()
	k.SmpWmb(b)
	if got := kinds(b.MustBuild()); got[arch.DMBIshSt] != 1 {
		t.Errorf("smp_wmb: %v", got)
	}
}

// TestRBDStrategies checks the Figure 10 implementations emit the right
// shapes.
func TestRBDStrategies(t *testing.T) {
	for _, st := range Strategies() {
		k := New(Config{Prof: arch.ARMv8(), Strategy: st})
		b := arch.NewBuilder()
		k.ReadBarrierDepends(b, 2)
		p := b.MustBuild()
		got := kinds(p)
		switch st.RBD {
		case RBDNone:
			if p.Len() != 0 {
				t.Errorf("%s: expected empty, got %v", st.Name, p.Code)
			}
		case RBDCtrl:
			if got[arch.ISB] != 0 || countOp(p, arch.Bne) != 1 || countOp(p, arch.Nop) != 1 {
				t.Errorf("%s: want cmp+bne+nop, got %v", st.Name, p.Code)
			}
		case RBDCtrlISB:
			if got[arch.ISB] != 1 || countOp(p, arch.Bne) != 1 {
				t.Errorf("%s: want ctrl then isb, got %v", st.Name, p.Code)
			}
		case RBDIshLd:
			if got[arch.DMBIshLd] != 1 {
				t.Errorf("%s: %v", st.Name, got)
			}
		case RBDIsh:
			if got[arch.DMBIsh] != 1 {
				t.Errorf("%s: %v", st.Name, got)
			}
		}
		// la/sr also fortifies READ_ONCE and WRITE_ONCE.
		b = arch.NewBuilder()
		k.ReadOnce(b, 2, 1, 0)
		ro := kinds(b.MustBuild())
		b = arch.NewBuilder()
		k.WriteOnce(b, 2, 1, 0)
		wo := kinds(b.MustBuild())
		if st.LASR {
			if ro[arch.DMBIshLd] != 1 || wo[arch.DMBIshSt] != 1 {
				t.Errorf("%s: la/sr should add ishld/ishst to READ_ONCE/WRITE_ONCE: %v %v", st.Name, ro, wo)
			}
		} else if len(ro) != 0 || len(wo) != 0 {
			t.Errorf("%s: READ_ONCE/WRITE_ONCE should be bare: %v %v", st.Name, ro, wo)
		}
	}
}

func countOp(p arch.Program, op arch.Op) int {
	n := 0
	for _, in := range p.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestInjectionSizeInvariance checks base vs test case instruction counts
// match for macro sites.
func TestInjectionSizeInvariance(t *testing.T) {
	v := costfn.ARM
	cost := map[arch.PathID]costfn.Injection{PathReadOnce: costfn.Cost(v, 64)}
	nops := map[arch.PathID]costfn.Injection{PathReadOnce: costfn.Nops(v)}
	a := New(Config{Prof: arch.ARMv8(), Strategy: Default(), Inject: cost})
	bse := New(Config{Prof: arch.ARMv8(), Strategy: Default(), Inject: nops})
	ba, bb := arch.NewBuilder(), arch.NewBuilder()
	a.ReadOnce(ba, 2, 1, 0)
	bse.ReadOnce(bb, 2, 1, 0)
	if ba.Len() != bb.Len() {
		t.Errorf("test case %d instructions, base case %d", ba.Len(), bb.Len())
	}
}

// TestSpinLockMutualExclusion checks the substrate lock under contention
// on both profiles and all Figure 10 strategies.
func TestSpinLockMutualExclusion(t *testing.T) {
	const perCore = 50
	for name, prof := range arch.Profiles() {
		for _, st := range Strategies() {
			k := New(Config{Prof: prof, Strategy: st})
			prog := func() arch.Program {
				b := arch.NewBuilder()
				b.MovImm(2, perCore)
				b.Label("outer")
				k.SpinLock(b, 1, 0)
				b.Load(3, 1, 8)
				b.AddImm(3, 3, 1)
				b.Store(3, 1, 8)
				k.SpinUnlock(b, 1, 0)
				b.SubsImm(2, 2, 1)
				b.Bne("outer")
				b.Halt()
				return b.MustBuild()
			}
			m, err := sim.New(prof, sim.Config{Cores: 3, MemWords: 1024, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 3; c++ {
				if err := m.LoadProgram(c, prog()); err != nil {
					t.Fatal(err)
				}
			}
			res, err := m.Run(30_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, st.Name, err)
			}
			if !res.AllHalted {
				t.Fatalf("%s/%s: did not halt", name, st.Name)
			}
			if got := m.ReadMem(8); got != 3*perCore {
				t.Errorf("%s/%s: counter = %d, want %d", name, st.Name, got, 3*perCore)
			}
		}
	}
}

// TestSPSCQueue checks the publish/consume ring across two cores: the
// consumer must receive exactly the produced sequence (no loss, no
// reordering, no stale payloads), on both profiles.
func TestSPSCQueue(t *testing.T) {
	const items = 120
	const mask = 15
	for name, prof := range arch.Profiles() {
		for _, st := range []Strategy{Default(), {Name: "lasr", RBD: RBDIshLd, LASR: true}} {
			k := New(Config{Prof: prof, Strategy: st})
			// Producer: push values 1000+i.
			pb := arch.NewBuilder()
			pb.MovImm(2, 0) // i
			pb.Label("prod")
			pb.AddImm(3, 2, 1000)
			k.QueuePush(pb, 3, 1, mask)
			pb.AddImm(2, 2, 1)
			// Flow control: wait until consumer within window.
			pb.Label("flow")
			pb.Load(4, 1, qHead)
			k.ReadOnce(pb, 5, 1, qTail)
			pb.Sub(4, 4, 5)
			pb.CmpImm(4, mask)
			pb.Bge("flow")
			pb.CmpImm(2, items)
			pb.Blt("prod")
			pb.Halt()
			// Consumer: pop and verify sequential payloads; count errors.
			cb := arch.NewBuilder()
			cb.MovImm(2, 0) // expected index
			cb.MovImm(7, 0) // error count
			cb.Label("cons")
			k.QueuePop(cb, 3, 1, mask)
			cb.AddImm(4, 2, 1000)
			cb.Cmp(3, 4)
			cb.Beq("ok")
			cb.AddImm(7, 7, 1)
			cb.Label("ok")
			cb.AddImm(2, 2, 1)
			cb.CmpImm(2, items)
			cb.Blt("cons")
			cb.Store(7, 1, 512) // error count
			cb.Store(2, 1, 520) // items consumed
			cb.Halt()
			m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 2048, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(0, pb.MustBuild()); err != nil {
				t.Fatal(err)
			}
			if err := m.LoadProgram(1, cb.MustBuild()); err != nil {
				t.Fatal(err)
			}
			res, err := m.Run(50_000_000)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, st.Name, err)
			}
			if !res.AllHalted {
				t.Fatalf("%s/%s: did not halt", name, st.Name)
			}
			if errs := m.ReadMem(512); errs != 0 {
				t.Errorf("%s/%s: %d corrupted payloads", name, st.Name, errs)
			}
			if got := m.ReadMem(520); got != items {
				t.Errorf("%s/%s: consumed %d, want %d", name, st.Name, got, items)
			}
		}
	}
}

// TestSeqlockConsistency runs a writer updating a two-word value inside a
// seqlock against readers that must never observe a torn pair.
func TestSeqlockConsistency(t *testing.T) {
	for name, prof := range arch.Profiles() {
		k := New(Config{Prof: prof, Strategy: Default()})
		// Writer: 60 updates of (v, v) pairs.
		wb := arch.NewBuilder()
		wb.MovImm(2, 1)
		wb.Label("wr")
		k.SeqWriteBegin(wb, 1, 0)
		wb.Store(2, 1, 64)
		wb.Store(2, 1, 128)
		k.SeqWriteEnd(wb, 1, 0)
		wb.AddImm(2, 2, 1)
		wb.CmpImm(2, 60)
		wb.Blt("wr")
		wb.Halt()
		// Reader: 60 consistent reads; count mismatches.
		rb := arch.NewBuilder()
		rb.MovImm(7, 0)
		rb.MovImm(2, 0)
		rb.Label("rd")
		k.SeqReadRetry(rb, 1, 0, func(b *arch.Builder) {
			b.Load(4, 1, 64)
			b.Load(5, 1, 128)
		})
		rb.Cmp(4, 5)
		rb.Beq("match")
		rb.AddImm(7, 7, 1)
		rb.Label("match")
		rb.AddImm(2, 2, 1)
		rb.CmpImm(2, 60)
		rb.Blt("rd")
		rb.Store(7, 1, 512)
		rb.Halt()
		m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 1024, Seed: 23})
		if err != nil {
			t.Fatal(err)
		}
		_ = m.LoadProgram(0, wb.MustBuild())
		_ = m.LoadProgram(1, rb.MustBuild())
		res, err := m.Run(50_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.AllHalted {
			t.Fatalf("%s: did not halt", name)
		}
		if torn := m.ReadMem(512); torn != 0 {
			t.Errorf("%s: %d torn seqlock reads", name, torn)
		}
	}
}

// TestPathNames checks every macro has a distinct, stable name.
func TestPathNames(t *testing.T) {
	seen := map[string]bool{}
	if len(Paths) != 14 {
		t.Fatalf("Paths has %d entries, want 14", len(Paths))
	}
	for _, p := range Paths {
		n := PathName(p)
		if n == "?" || seen[n] {
			t.Errorf("bad or duplicate macro name %q", n)
		}
		seen[n] = true
	}
}
