package kernel

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestRCUGraceExcludesReaders is the RCU safety property: a version
// reached through rcu_dereference inside a read-side critical section must
// never be observed reclaimed, because synchronize_rcu separates
// republication from reclamation.
//
// Layout: pointer slot at 0, version buffers at 64 and 128 (the slot holds
// one of those addresses), stop flag at 256, RCU domain at 512, reader
// observation slots at 1024+.
func TestRCUGraceExcludesReaders(t *testing.T) {
	const (
		slot    = int64(0)
		verA    = int64(64)
		verB    = int64(128)
		stop    = int64(256)
		domain  = int64(512)
		obsBase = int64(1024)
		live    = int64(7777)
		dead    = int64(-1)
		rounds  = 20
	)
	seeds := []int64{1, 2, 3, 4, 5, 6}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for name, prof := range arch.Profiles() {
		for _, seed := range seeds {
			k := New(Config{Prof: prof, Strategy: Default()})
			cpus := 3 // reader CPUs

			// Updater (core 0): alternate the live version between the
			// two buffers; reclaim the retired one only after a grace
			// period.  r10/r11 hold the two buffer addresses.
			ub := arch.NewBuilder()
			ub.MovImm(10, verA)
			ub.MovImm(11, verB)
			ub.MovImm(2, rounds)
			ub.Label("round")
			// Prepare the spare buffer (r11) as the new live version.
			ub.MovImm(3, live)
			ub.Store(3, 11, 0)
			// Publish it: rcu_assign_pointer(slot, r11).
			k.RCUAssign(ub, 11, 1, slot)
			// Grace period, then reclaim the old buffer (r10).
			k.SynchronizeRCU(ub, 5, cpus)
			ub.MovImm(4, dead)
			ub.Store(4, 10, 0)
			// Swap roles for the next round.
			ub.Mov(6, 10)
			ub.Mov(10, 11)
			ub.Mov(11, 6)
			ub.SubsImm(2, 2, 1)
			ub.Bne("round")
			ub.MovImm(7, 1)
			k.WriteOnce(ub, 7, 1, stop)
			ub.Halt()

			m, err := sim.New(prof, sim.Config{Cores: 1 + cpus, MemWords: 4096, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			// Initial state: slot -> verA, both buffers live-ish.
			m.WriteMem(slot, verA)
			m.WriteMem(verA, live)
			m.WriteMem(verB, live)
			m.SetReg(0, 1, 0)
			m.SetReg(0, 5, domain)
			if err := m.LoadProgram(0, ub.MustBuild()); err != nil {
				t.Fatal(err)
			}

			// Readers: rcu_read_lock; p = rcu_dereference(slot);
			// v = *p (address-dependent); rcu_read_unlock; v must be
			// live.
			for cpu := 0; cpu < cpus; cpu++ {
				rb := arch.NewBuilder()
				rb.MovImm(7, 0) // violations
				rb.Label("loop")
				k.RCUReadLock(rb, 5, cpu)
				k.RCUDereference(rb, 3, 1, slot) // r3 = pointer
				rb.Load(4, 3, 0)                 // v = *p (addr dependency)
				k.RCUReadUnlock(rb, 5, cpu)
				rb.CmpImm(4, live)
				rb.Beq("ok")
				rb.AddImm(7, 7, 1)
				rb.Label("ok")
				k.ReadOnce(rb, 6, 1, stop)
				rb.CmpImm(6, 0)
				rb.Beq("loop")
				rb.Store(7, 1, obsBase+16*int64(cpu))
				rb.Halt()
				core := 1 + cpu
				m.SetReg(core, 1, 0)
				m.SetReg(core, 5, domain)
				if err := m.LoadProgram(core, rb.MustBuild()); err != nil {
					t.Fatal(err)
				}
			}

			res, err := m.Run(80_000_000)
			if err != nil {
				t.Fatalf("%s seed %d: %v", name, seed, err)
			}
			if !res.AllHalted {
				t.Fatalf("%s seed %d: did not halt", name, seed)
			}
			for cpu := 0; cpu < cpus; cpu++ {
				if v := m.ReadMem(obsBase + 16*int64(cpu)); v != 0 {
					t.Errorf("%s seed %d: reader %d saw %d reclaimed values inside read sections",
						name, seed, cpu, v)
				}
			}
		}
	}
}

// TestRCUGraceIsNecessary shows the counter machinery is what provides the
// guarantee: an updater that reclaims *without* waiting (no
// SynchronizeRCU) does let readers observe reclaimed values.
func TestRCUGraceIsNecessary(t *testing.T) {
	const (
		slot    = int64(0)
		verA    = int64(64)
		verB    = int64(128)
		stop    = int64(256)
		domain  = int64(512)
		obsBase = int64(1024)
		live    = int64(7777)
		rounds  = 60
	)
	prof := arch.ARMv8()
	violations := int64(0)
	for seed := int64(1); seed <= 10 && violations == 0; seed++ {
		k := New(Config{Prof: prof, Strategy: Default()})
		ub := arch.NewBuilder()
		ub.MovImm(10, verA)
		ub.MovImm(11, verB)
		ub.MovImm(2, rounds)
		ub.Label("round")
		ub.MovImm(3, live)
		ub.Store(3, 11, 0)
		k.RCUAssign(ub, 11, 1, slot)
		// No grace period: reclaim immediately.
		ub.MovImm(4, -1)
		ub.Store(4, 10, 0)
		ub.Mov(6, 10)
		ub.Mov(10, 11)
		ub.Mov(11, 6)
		ub.SubsImm(2, 2, 1)
		ub.Bne("round")
		ub.MovImm(7, 1)
		k.WriteOnce(ub, 7, 1, stop)
		ub.Halt()

		m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 4096, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		m.WriteMem(slot, verA)
		m.WriteMem(verA, live)
		m.WriteMem(verB, live)
		m.SetReg(0, 1, 0)
		if err := m.LoadProgram(0, ub.MustBuild()); err != nil {
			t.Fatal(err)
		}
		rb := arch.NewBuilder()
		rb.MovImm(7, 0)
		rb.Label("loop")
		k.RCUReadLock(rb, 5, 0)
		k.RCUDereference(rb, 3, 1, slot)
		rb.Load(4, 3, 0)
		k.RCUReadUnlock(rb, 5, 0)
		rb.CmpImm(4, live)
		rb.Beq("ok")
		rb.AddImm(7, 7, 1)
		rb.Label("ok")
		k.ReadOnce(rb, 6, 1, stop)
		rb.CmpImm(6, 0)
		rb.Beq("loop")
		rb.Store(7, 1, obsBase)
		rb.Halt()
		m.SetReg(1, 1, 0)
		m.SetReg(1, 5, domain)
		if err := m.LoadProgram(1, rb.MustBuild()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(80_000_000)
		if err != nil || !res.AllHalted {
			t.Fatalf("seed %d: err=%v halted=%v", seed, err, res.AllHalted)
		}
		violations += m.ReadMem(obsBase)
	}
	if violations == 0 {
		t.Error("reclaiming without a grace period never produced a violation; the safety test is vacuous")
	}
}
