package jvm

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/costfn"
	"repro/internal/sim"
)

func countKinds(p arch.Program) map[arch.BarrierKind]int {
	m := map[arch.BarrierKind]int{}
	for _, in := range p.Code {
		if in.Op == arch.Barrier {
			m[in.Kind]++
		}
	}
	return m
}

func countOps(p arch.Program, op arch.Op) int {
	n := 0
	for _, in := range p.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestLoweringARM checks the §4.2 ARM lowering table.
func TestLoweringARM(t *testing.T) {
	j := New(Config{Prof: arch.ARMv8(), Strategy: JDK8()})
	cases := []struct {
		mask Elemental
		want arch.BarrierKind
	}{
		{LoadLoad, arch.DMBIshLd},
		{LoadStore, arch.DMBIshLd},
		{StoreStore, arch.DMBIshSt},
		{StoreLoad, arch.DMBIsh},
		{Volatile, arch.DMBIsh},
	}
	for _, c := range cases {
		b := arch.NewBuilder()
		j.Barrier(b, c.mask)
		got := countKinds(b.MustBuild())
		if got[c.want] != 1 {
			t.Errorf("ARM %v lowered to %v, want one %v", c.mask, got, c.want)
		}
	}
	// Release = LoadStore|StoreStore → ishld + ishst pair on ARM.
	b := arch.NewBuilder()
	j.Barrier(b, Release)
	got := countKinds(b.MustBuild())
	if got[arch.DMBIshLd] != 1 || got[arch.DMBIshSt] != 1 {
		t.Errorf("ARM Release lowered to %v, want ishld+ishst", got)
	}
}

// TestLoweringPOWER checks the §4.2 POWER lowering: StoreLoad→hwsync,
// everything else lwsync.
func TestLoweringPOWER(t *testing.T) {
	j := New(Config{Prof: arch.POWER7(), Strategy: JDK8()})
	for _, c := range []struct {
		mask Elemental
		want arch.BarrierKind
	}{
		{LoadLoad, arch.LwSync},
		{LoadStore, arch.LwSync},
		{StoreStore, arch.LwSync},
		{Release, arch.LwSync},
		{StoreLoad, arch.HwSync},
		{Volatile, arch.HwSync},
	} {
		b := arch.NewBuilder()
		j.Barrier(b, c.mask)
		got := countKinds(b.MustBuild())
		if got[c.want] != 1 || len(got) != 1 {
			t.Errorf("POWER %v lowered to %v, want one %v", c.mask, got, c.want)
		}
	}
}

// TestHeavyStoreStore checks the TXT2 strategy swap.
func TestHeavyStoreStore(t *testing.T) {
	st := JDK8()
	st.HeavyStoreStore = true
	jArm := New(Config{Prof: arch.ARMv8(), Strategy: st})
	b := arch.NewBuilder()
	jArm.Barrier(b, StoreStore)
	if got := countKinds(b.MustBuild()); got[arch.DMBIsh] != 1 {
		t.Errorf("heavy StoreStore on ARM lowered to %v, want dmb ish", got)
	}
	jPow := New(Config{Prof: arch.POWER7(), Strategy: st})
	b = arch.NewBuilder()
	jPow.Barrier(b, StoreStore)
	if got := countKinds(b.MustBuild()); got[arch.HwSync] != 1 {
		t.Errorf("heavy StoreStore on POWER lowered to %v, want hwsync", got)
	}
}

// TestVolatileShapes checks barrier placement around volatile accesses.
func TestVolatileShapes(t *testing.T) {
	// JDK8 on ARM: vload = Volatile(dmb ish) + ld + Acquire(dmb ishld).
	j := New(Config{Prof: arch.ARMv8(), Strategy: JDK8()})
	b := arch.NewBuilder()
	j.VolatileLoad(b, 2, 1, 0)
	p := b.MustBuild()
	if k := countKinds(p); k[arch.DMBIsh] != 1 || k[arch.DMBIshLd] != 1 {
		t.Errorf("JDK8 volatile load barriers: %v", k)
	}
	// JDK9 on ARM: single ldar, no barriers.
	j9 := New(Config{Prof: arch.ARMv8(), Strategy: JDK9()})
	b = arch.NewBuilder()
	j9.VolatileLoad(b, 2, 1, 0)
	p = b.MustBuild()
	if len(countKinds(p)) != 0 || countOps(p, arch.LoadAcq) != 1 {
		t.Errorf("JDK9 volatile load should be a single ldar, got %v", p.Code)
	}
	b = arch.NewBuilder()
	j9.VolatileStore(b, 2, 1, 0)
	p = b.MustBuild()
	if countOps(p, arch.StoreRel) != 1 {
		t.Errorf("JDK9 volatile store should use stlr, got %v", p.Code)
	}
	// JDK9 on POWER falls back to barriers (the acq/rel strategy is
	// ARM-specific in the paper).
	j9p := New(Config{Prof: arch.POWER7(), Strategy: JDK9()})
	b = arch.NewBuilder()
	j9p.VolatileLoad(b, 2, 1, 0)
	if k := countKinds(b.MustBuild()); k[arch.HwSync] != 1 {
		t.Errorf("JDK9 POWER volatile load barriers: %v", k)
	}
}

// TestInjectionPerElemental checks that a composite site receives one
// injection per constituent elemental (§4.2.1: "a code path will appear in
// multiple results") and that nop padding preserves instruction counts.
func TestInjectionPerElemental(t *testing.T) {
	variant := costfn.ARMNoStack
	inj := map[arch.PathID]costfn.Injection{
		PathLoadLoad:   costfn.Cost(variant, 8),
		PathLoadStore:  costfn.Cost(variant, 8),
		PathStoreLoad:  costfn.Cost(variant, 8),
		PathStoreStore: costfn.Cost(variant, 8),
	}
	j := New(Config{Prof: arch.ARMv8(), Strategy: JDK8(), Inject: inj})
	b := arch.NewBuilder()
	j.Barrier(b, Volatile)
	withCost := b.Len()

	nops := map[arch.PathID]costfn.Injection{}
	for p := range inj {
		nops[p] = costfn.Nops(variant)
	}
	jn := New(Config{Prof: arch.ARMv8(), Strategy: JDK8(), Inject: nops})
	b = arch.NewBuilder()
	jn.Barrier(b, Volatile)
	if b.Len() != withCost {
		t.Errorf("base case %d instructions, test case %d: binary size not invariant", b.Len(), withCost)
	}
	// Four elementals → four injections of StaticLen each, plus the
	// merged dmb ish.
	want := 4*costfn.StaticLen(variant) + 1
	if withCost != want {
		t.Errorf("Volatile with injections = %d instructions, want %d", withCost, want)
	}
}

// TestSiteCounting checks elemental invocation counters through a run.
func TestSiteCounting(t *testing.T) {
	j := New(Config{Prof: arch.ARMv8(), Strategy: JDK8()})
	b := arch.NewBuilder()
	b.MovImm(1, 0)
	b.MovImm(2, 5) // iterations
	b.Label("loop")
	j.VolatileStore(b, 1, 1, 256)
	b.SubsImm(2, 2, 1)
	b.Bne("loop")
	b.Halt()
	m, err := sim.New(arch.ARMv8(), sim.Config{Cores: 1, MemWords: 1024, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.LoadProgram(0, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(5_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllHalted {
		t.Fatal("did not halt")
	}
	// Each volatile store emits Release (ishld+ishst attributed to
	// LoadStore/StoreStore) and Volatile (dmb ish attributed to
	// StoreLoad): the StoreLoad site must count 5 retired instructions.
	if int(PathStoreLoad) >= len(res.SiteCounts) || res.SiteCounts[PathStoreLoad] != 5 {
		t.Errorf("StoreLoad site count = %v, want 5", res.SiteCounts)
	}
}

// TestLockMutualExclusion runs two cores incrementing a plain counter
// under the JVM monitor and checks no updates are lost, across strategies
// and architectures.
func TestLockMutualExclusion(t *testing.T) {
	const perCore = 60
	strategies := []Strategy{JDK8(), JDK9(),
		{Name: "jdk9-patch", UseAcqRel: true, LockPatch: true},
		{Name: "jdk8-patch", LockPatch: true}}
	for name, prof := range arch.Profiles() {
		for _, st := range strategies {
			j := New(Config{Prof: prof, Strategy: st})
			prog := func() arch.Program {
				b := arch.NewBuilder()
				b.MovImm(2, perCore)
				b.Label("outer")
				j.Lock(b, 1, 0)
				b.Load(3, 1, 8)
				b.AddImm(3, 3, 1)
				b.Store(3, 1, 8)
				j.Unlock(b, 1, 0)
				b.SubsImm(2, 2, 1)
				b.Bne("outer")
				b.Halt()
				return b.MustBuild()
			}
			for seed := int64(1); seed <= 4; seed++ {
				m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 1024, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.LoadProgram(0, prog()); err != nil {
					t.Fatal(err)
				}
				if err := m.LoadProgram(1, prog()); err != nil {
					t.Fatal(err)
				}
				res, err := m.Run(20_000_000)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", name, st.Name, seed, err)
				}
				if !res.AllHalted {
					t.Fatalf("%s/%s seed %d: did not halt", name, st.Name, seed)
				}
				if got := m.ReadMem(8); got != 2*perCore {
					t.Errorf("%s/%s seed %d: counter = %d, want %d", name, st.Name, seed, got, 2*perCore)
				}
			}
		}
	}
}

// TestAtomicAdd checks the CAS loop under contention.
func TestAtomicAdd(t *testing.T) {
	for name, prof := range arch.Profiles() {
		j := New(Config{Prof: prof, Strategy: JDK8()})
		prog := func() arch.Program {
			b := arch.NewBuilder()
			b.MovImm(2, 50)
			b.Label("loop")
			j.AtomicAdd(b, 4, 1, 0, 3)
			b.SubsImm(2, 2, 1)
			b.Bne("loop")
			b.Halt()
			return b.MustBuild()
		}
		m, err := sim.New(prof, sim.Config{Cores: 2, MemWords: 1024, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		_ = m.LoadProgram(0, prog())
		_ = m.LoadProgram(1, prog())
		res, err := m.Run(20_000_000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.AllHalted {
			t.Fatalf("%s: did not halt", name)
		}
		if got := m.ReadMem(0); got != 2*50*3 {
			t.Errorf("%s: counter = %d, want 300", name, got)
		}
	}
}
