package jvm

import "fmt"

// This file makes the JVM fencing-strategy space an enumerable,
// declaratively-encoded value set instead of two named constructors: the
// optimizer enumerates candidates from here, ships them across the wire as
// Specs, and reconstructs bit-identical Strategy values on whichever worker
// executes the cell.

// Lowering selector values for Spec.Loads / Spec.Stores.
const (
	// LowerBarriers selects the JDK8-style dmb-bracketed lowering.
	LowerBarriers = "barriers"
	// LowerAcqRel selects the JDK9-style ldar/stlr lowering.
	LowerAcqRel = "acqrel"
)

// Spec is the round-trippable encoding of a Strategy: FromSpec(s.Spec())
// reproduces s exactly (including its canonical Name) for every strategy
// in the enumerated space.
type Spec struct {
	// Loads and Stores select the volatile-access lowering family
	// independently: "barriers" or "acqrel".
	Loads  string `json:"loads"`
	Stores string `json:"stores"`
	// DropStoreLoad drops the StoreLoad elemental from the trailing
	// barrier of barrier-mode volatile stores (unsound with acqrel
	// loads; the gate's job is to prove that).
	DropStoreLoad bool `json:"drop_storeload,omitempty"`
	// HeavyStoreStore lowers StoreStore to the full barrier (TXT2).
	HeavyStoreStore bool `json:"heavy_storestore,omitempty"`
	// LockPatch applies the OpenJDK 8135187 DMB-elimination patch.
	LockPatch bool `json:"lock_patch,omitempty"`
}

// Spec returns the declarative encoding of the strategy.
func (s Strategy) Spec() Spec {
	sp := Spec{
		Loads:           LowerBarriers,
		Stores:          LowerBarriers,
		DropStoreLoad:   s.DropStoreLoad,
		HeavyStoreStore: s.HeavyStoreStore,
		LockPatch:       s.LockPatch,
	}
	if s.acqRelLoads() {
		sp.Loads = LowerAcqRel
	}
	if s.acqRelStores() {
		sp.Stores = LowerAcqRel
	}
	return sp
}

// FromSpec decodes a Spec into a Strategy with its canonical name.  The two
// pure corners decode to the named JDK strategies verbatim; everything else
// gets a generated hybrid name.
func FromSpec(sp Spec) (Strategy, error) {
	for _, v := range []string{sp.Loads, sp.Stores} {
		if v != LowerBarriers && v != LowerAcqRel {
			return Strategy{}, fmt.Errorf("jvm: unknown lowering %q (want %q or %q)", v, LowerBarriers, LowerAcqRel)
		}
	}
	if sp.DropStoreLoad && sp.Stores != LowerBarriers {
		return Strategy{}, fmt.Errorf("jvm: drop_storeload applies only to barrier-mode stores")
	}
	st := Strategy{
		HeavyStoreStore: sp.HeavyStoreStore,
		LockPatch:       sp.LockPatch,
		DropStoreLoad:   sp.DropStoreLoad,
	}
	switch {
	case sp.Loads == LowerAcqRel && sp.Stores == LowerAcqRel:
		st.UseAcqRel = true
	case sp.Loads == LowerAcqRel:
		st.AcqRelLoad = true
	case sp.Stores == LowerAcqRel:
		st.AcqRelStore = true
	}
	st.Name = specName(sp)
	return st, nil
}

// specName derives the canonical strategy name of a spec.
func specName(sp Spec) string {
	base := ""
	switch {
	case sp.Loads == LowerBarriers && sp.Stores == LowerBarriers:
		base = "jdk8-barriers"
	case sp.Loads == LowerAcqRel && sp.Stores == LowerAcqRel:
		base = "jdk9-acqrel"
	case sp.Loads == LowerAcqRel:
		base = "hybrid-ldar+dmb"
	default:
		base = "hybrid-dmb+stlr"
	}
	if sp.DropStoreLoad {
		base += "-nosl"
	}
	if sp.HeavyStoreStore {
		base += "+heavyss"
	}
	if sp.LockPatch {
		base += "+lockpatch"
	}
	return base
}

// Enumerate returns the strategy space the optimizer searches, in a stable
// order: the two named JDK strategies first (verbatim), then the generated
// hybrids, then the deliberately weakened variant whose trailing StoreLoad
// is dropped — sound-looking but rejected by the litmus gate.
func Enumerate() []Strategy {
	specs := []Spec{
		{Loads: LowerBarriers, Stores: LowerBarriers},                    // jdk8-barriers
		{Loads: LowerAcqRel, Stores: LowerAcqRel},                        // jdk9-acqrel
		{Loads: LowerAcqRel, Stores: LowerBarriers},                      // hybrid-ldar+dmb
		{Loads: LowerBarriers, Stores: LowerAcqRel},                      // hybrid-dmb+stlr
		{Loads: LowerBarriers, Stores: LowerBarriers, HeavyStoreStore: true},
		{Loads: LowerAcqRel, Stores: LowerBarriers, DropStoreLoad: true}, // hybrid-ldar+dmb-nosl (unsound)
	}
	out := make([]Strategy, 0, len(specs))
	for _, sp := range specs {
		st, err := FromSpec(sp)
		if err != nil {
			panic(err) // static space; unreachable
		}
		out = append(out, st)
	}
	// The named corners must appear verbatim.
	out[0] = JDK8()
	out[1] = JDK9()
	return out
}
