package c11

import "fmt"

// Declarative strategy-space encoding for the C11 platform: the per-arch
// mapping choice (dmb sequences vs ldar/stlr on the MCA profile) as a
// round-trippable value.

// Spec is the round-trippable encoding of a Strategy.
type Spec struct {
	// Lowering is "barriers" or "acq-rel".
	Lowering string `json:"lowering"`
}

// Spec returns the declarative encoding of the strategy.
func (s Strategy) Spec() Spec {
	if s.UseAcqRel {
		return Spec{Lowering: "acq-rel"}
	}
	return Spec{Lowering: "barriers"}
}

// FromSpec decodes a Spec into a Strategy with its canonical name.
func FromSpec(sp Spec) (Strategy, error) {
	switch sp.Lowering {
	case "barriers":
		return Barriers(), nil
	case "acq-rel":
		return AcqRelInstrs(), nil
	}
	return Strategy{}, fmt.Errorf("c11: unknown lowering %q (want \"barriers\" or \"acq-rel\")", sp.Lowering)
}

// Enumerate returns the C11 strategy space: the two per-arch mapping
// families, barrier-based first.
func Enumerate() []Strategy {
	return []Strategy{Barriers(), AcqRelInstrs()}
}
