package c11

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

func kinds(p arch.Program) map[arch.BarrierKind]int {
	m := map[arch.BarrierKind]int{}
	for _, in := range p.Code {
		if in.Op == arch.Barrier {
			m[in.Kind]++
		}
	}
	return m
}

func ops(p arch.Program, op arch.Op) int {
	n := 0
	for _, in := range p.Code {
		if in.Op == op {
			n++
		}
	}
	return n
}

// TestLowerings checks the standard C11→hardware mapping table.
func TestLowerings(t *testing.T) {
	armB := New(Config{Prof: arch.ARMv8(), Strategy: Barriers()})
	armA := New(Config{Prof: arch.ARMv8(), Strategy: AcqRelInstrs()})
	pow := New(Config{Prof: arch.POWER7(), Strategy: Barriers()})

	// Relaxed: bare accesses everywhere.
	for _, c := range []*C11{armB, armA, pow} {
		b := arch.NewBuilder()
		c.Load(b, Relaxed, 2, 1, 0)
		c.Store(b, Relaxed, 2, 1, 8)
		if p := b.MustBuild(); len(kinds(p)) != 0 || p.Len() != 2 {
			t.Errorf("relaxed should be bare: %v", p.Code)
		}
	}

	// ARM barrier strategy: acquire load = ldr; dmb ishld.
	b := arch.NewBuilder()
	armB.Load(b, Acquire, 2, 1, 0)
	if k := kinds(b.MustBuild()); k[arch.DMBIshLd] != 1 {
		t.Errorf("arm acquire load: %v", k)
	}
	// ARM acq/rel strategy: acquire load = ldar.
	b = arch.NewBuilder()
	armA.Load(b, Acquire, 2, 1, 0)
	if p := b.MustBuild(); ops(p, arch.LoadAcq) != 1 || len(kinds(p)) != 0 {
		t.Errorf("arm acq/rel acquire load: %v", p.Code)
	}
	// ARM seq_cst store, barrier strategy: dmb ish; str; dmb ish.
	b = arch.NewBuilder()
	armB.Store(b, SeqCst, 2, 1, 0)
	if k := kinds(b.MustBuild()); k[arch.DMBIsh] != 2 {
		t.Errorf("arm seq_cst store: %v", k)
	}
	// POWER seq_cst load: hwsync; ld; lwsync.
	b = arch.NewBuilder()
	pow.Load(b, SeqCst, 2, 1, 0)
	k := kinds(b.MustBuild())
	if k[arch.HwSync] != 1 || k[arch.LwSync] != 1 {
		t.Errorf("power seq_cst load: %v", k)
	}
	// POWER release store: lwsync; st.
	b = arch.NewBuilder()
	pow.Store(b, Release, 2, 1, 0)
	if k := kinds(b.MustBuild()); k[arch.LwSync] != 1 {
		t.Errorf("power release store: %v", k)
	}
	// seq_cst fences.
	b = arch.NewBuilder()
	pow.Fence(b, SeqCst)
	if k := kinds(b.MustBuild()); k[arch.HwSync] != 1 {
		t.Errorf("power seq_cst fence: %v", k)
	}
}

// TestFetchAddAtomicity hammers fetch_add from four cores and checks no
// increments are lost, for every order and both machines.
func TestFetchAddAtomicity(t *testing.T) {
	const perCore = 60
	for name, prof := range arch.Profiles() {
		for _, o := range []Order{Relaxed, AcqRel, SeqCst} {
			c := New(Config{Prof: prof, Strategy: Barriers()})
			prog := func() arch.Program {
				b := arch.NewBuilder()
				b.MovImm(2, perCore)
				b.Label("loop")
				c.FetchAdd(b, o, 4, 1, 0, 1)
				b.SubsImm(2, 2, 1)
				b.Bne("loop")
				b.Halt()
				return b.MustBuild()
			}
			m, err := sim.New(prof, sim.Config{Cores: 4, MemWords: 1024, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			for core := 0; core < 4; core++ {
				if err := m.LoadProgram(core, prog()); err != nil {
					t.Fatal(err)
				}
			}
			res, err := m.Run(40_000_000)
			if err != nil || !res.AllHalted {
				t.Fatalf("%s/%v: err=%v halted=%v", name, o, err, res.AllHalted)
			}
			if got := m.ReadMem(0); got != 4*perCore {
				t.Errorf("%s/%v: counter = %d, want %d", name, o, got, 4*perCore)
			}
		}
	}
}

// stackMachine builds P pusher cores and P popper cores over one stack.
// Pushers push values 1000*core+i; poppers record every popped value into
// a private log.  Returns the machine and the log/limit layout.
func stackMachine(t *testing.T, prof *arch.Profile, st Strategy, o StackOrders, seed int64) (*sim.Machine, int64, int64) {
	t.Helper()
	const (
		headAddr  = int64(0)
		arenaBase = int64(1024) // per-pusher arenas, 2 words per node
		logBase   = int64(8192) // per-popper logs
		perPusher = 40
	)
	c := New(Config{Prof: prof, Strategy: st})
	m, err := sim.New(prof, sim.Config{Cores: 4, MemWords: 1 << 14, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	// Pushers: cores 0-1.
	for p := 0; p < 2; p++ {
		b := arch.NewBuilder()
		b.MovImm(2, 0) // i
		b.Label("push")
		// node = arena + 2*i
		b.Lsl(3, 2, 1)
		b.AddImm(3, 3, arenaBase+int64(p)*2048)
		// node.value = 1000*(p+1) + i
		b.AddImm(4, 2, int64(1000*(p+1)))
		b.Store(4, 3, 0)
		c.StackPush(b, o, 3, 1, 5, 6)
		b.AddImm(2, 2, 1)
		b.CmpImm(2, perPusher)
		b.Blt("push")
		b.Halt()
		m.SetReg(p, 1, headAddr)
		if err := m.LoadProgram(p, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	// Poppers: cores 2-3; pop until they have seen perPusher values each.
	for q := 0; q < 2; q++ {
		b := arch.NewBuilder()
		b.MovImm(2, 0) // popped count
		b.Label("pop")
		c.StackPop(b, o, 3, 4, 1, 5, 6)
		b.CmpImm(3, 0)
		b.Beq("pop") // empty: retry
		// log[count] = value
		b.Lsl(7, 2, 0)
		b.AddImm(7, 7, logBase+int64(q)*1024)
		b.Store(4, 7, 0)
		b.AddImm(2, 2, 1)
		b.CmpImm(2, perPusher)
		b.Blt("pop")
		b.Halt()
		core := 2 + q
		m.SetReg(core, 1, headAddr)
		if err := m.LoadProgram(core, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	return m, logBase, perPusher
}

// TestTreiberStackCorrectOrders checks the stack under release/acquire and
// all-seq_cst orderings: every pushed value is popped exactly once, on
// both machines and strategies.
func TestTreiberStackCorrectOrders(t *testing.T) {
	seeds := int64(3)
	if testing.Short() {
		seeds = 1
	}
	for name, prof := range arch.Profiles() {
		for _, st := range []Strategy{Barriers(), AcqRelInstrs()} {
			for _, o := range []StackOrders{ReleaseAcquire(), AllSeqCst()} {
				for seed := int64(1); seed <= seeds; seed++ {
					m, logBase, perPusher := stackMachine(t, prof, st, o, seed)
					res, err := m.Run(60_000_000)
					if err != nil || !res.AllHalted {
						t.Fatalf("%s/%s seed %d: err=%v halted=%v", name, st.Name, seed, err, res.AllHalted)
					}
					seen := map[int64]int{}
					for q := 0; q < 2; q++ {
						for i := int64(0); i < perPusher; i++ {
							seen[m.ReadMem(logBase+int64(q)*1024+i)]++
						}
					}
					if len(seen) != int(2*perPusher) {
						t.Fatalf("%s/%s seed %d: %d distinct values popped, want %d",
							name, st.Name, seed, len(seen), 2*perPusher)
					}
					for v, n := range seen {
						if n != 1 {
							t.Errorf("%s/%s seed %d: value %d popped %d times", name, st.Name, seed, v, n)
						}
						if !(v >= 1000 && v < 1000+perPusher || v >= 2000 && v < 2000+perPusher) {
							t.Errorf("%s/%s seed %d: alien value %d popped", name, st.Name, seed, v)
						}
					}
				}
			}
		}
	}
}

// TestTreiberStackRelaxedIsBroken demonstrates why the orderings matter:
// with every access relaxed, poppers can observe nodes before their
// initialisation and the value set breaks, at least sometimes, on the
// non-multi-copy-atomic machine.
func TestTreiberStackRelaxedIsBroken(t *testing.T) {
	if testing.Short() {
		t.Skip("breakage hunt is slow")
	}
	broken := false
	for seed := int64(1); seed <= 12 && !broken; seed++ {
		m, logBase, perPusher := stackMachine(t, arch.POWER7(), Barriers(), AllRelaxed(), seed)
		res, err := m.Run(60_000_000)
		if err != nil {
			// A corrupted stack can also deadlock the poppers; that
			// counts as observed breakage.
			broken = true
			break
		}
		if !res.AllHalted {
			broken = true
			break
		}
		seen := map[int64]int{}
		for q := 0; q < 2; q++ {
			for i := int64(0); i < perPusher; i++ {
				seen[m.ReadMem(logBase+int64(q)*1024+i)]++
			}
		}
		if len(seen) != int(2*perPusher) {
			broken = true
			break
		}
		for v := range seen {
			if !(v >= 1000 && v < 1000+perPusher || v >= 2000 && v < 2000+perPusher) {
				broken = true
			}
		}
	}
	if !broken {
		t.Error("all-relaxed stack never misbehaved in 12 seeds; the ordering tests are vacuous")
	}
}

// TestPathNames checks path naming.
func TestPathNames(t *testing.T) {
	if len(Paths) != 7 {
		t.Fatalf("Paths = %d", len(Paths))
	}
	seen := map[string]bool{}
	for _, p := range Paths {
		n := PathName(p)
		if n == "?" || seen[n] {
			t.Errorf("bad/duplicate path name %q", n)
		}
		seen[n] = true
	}
	for o := Relaxed; o <= SeqCst; o++ {
		if PathFor(o) == 0 {
			t.Errorf("no path for %v", o)
		}
	}
}
