package c11

import (
	"fmt"

	"repro/internal/arch"
)

// This file emits a Michael-Scott queue over the C11 atomics — the other
// half of the introduction's "lock-free stack or queue".
//
// Memory layout: the queue header is two words (head, tail), both pointing
// at a dummy node initially; nodes are two words (value, next) in
// per-thread arenas (no reuse, so no ABA).
//
//	q+0:    head
//	q+1:    tail
//	node+0: value
//	node+1: next (0 = none)

// QueueInit initialises the header at addr with the dummy node at dummy in
// the machine's memory (call before Run).
func QueueInit(write func(addr, val int64), q, dummy int64) {
	write(q, dummy)
	write(q+1, dummy)
	write(dummy, 0)
	write(dummy+1, 0)
}

// QueueOrders selects the orderings of the queue's atomic accesses.
type QueueOrders struct {
	// LoadPtr is the order of head/tail/next pointer loads (Acquire in
	// the canonical version; Consume suffices for the dependent reads).
	LoadPtr Order
	// LinkCAS is the success order of the next-pointer CAS that links a
	// new node (Release: the node's payload must be visible first).
	LinkCAS Order
	// SwingCAS is the success order of the head/tail swings (Release in
	// the canonical version).
	SwingCAS Order
}

// QueueReleaseAcquire returns the canonical correct orderings.
func QueueReleaseAcquire() QueueOrders {
	return QueueOrders{LoadPtr: Acquire, LinkCAS: Release, SwingCAS: Release}
}

// QueueAllSeqCst returns the defensive orderings.
func QueueAllSeqCst() QueueOrders {
	return QueueOrders{LoadPtr: SeqCst, LinkCAS: SeqCst, SwingCAS: SeqCst}
}

// Enqueue emits a Michael-Scott enqueue of the node whose address is in
// rNode (value at +0 already written by the caller; next at +1 is cleared
// here) onto the queue whose header is at [rQ].  Clobbers rT, rN, rStatus
// and the platform scratch registers.
func (c *C11) Enqueue(b *arch.Builder, o QueueOrders, rNode, rQ, rT, rN, rStatus arch.Reg) {
	id := b.Len()
	retry := fmt.Sprintf("msq_enq_%d", id)
	done := fmt.Sprintf("msq_enq_done_%d", id)
	// node->next = 0 (plain: ordered by the release link CAS).
	b.MovImm(rStatus, 0)
	b.Store(rStatus, rNode, 1)
	b.Label(retry)
	c.Load(b, o.LoadPtr, rT, rQ, 1) // t = tail
	b.Load(rN, rT, 1)               // n = t->next (dependent)
	b.CmpImm(rN, 0)
	b.Beq("msq_enq_try_" + itoa(id))
	// Tail is lagging: help swing it, then retry.
	c.CompareExchange(b, Relaxed, rStatus, rT, rN, rQ, 1)
	b.B(retry)
	b.Label("msq_enq_try_" + itoa(id))
	// Try to link: CAS(t->next, 0 -> node), release.
	b.MovImm(rN, 0)
	c.CompareExchange(b, o.LinkCAS, rStatus, rN, rNode, rT, 1)
	b.CmpImm(rStatus, 1)
	b.Bne(retry)
	// Swing the tail (may fail if someone helped; that is fine).
	c.CompareExchange(b, o.SwingCAS, rStatus, rT, rNode, rQ, 1)
	b.Label(done)
}

// Dequeue emits a Michael-Scott dequeue: rVal receives the value (or -1
// when the queue was empty, with rNode = 0).  Clobbers rH, rT, rN, rStatus
// and the platform scratch registers; rNode receives the retired dummy.
func (c *C11) Dequeue(b *arch.Builder, o QueueOrders, rNode, rVal, rQ, rH, rT, rN, rStatus arch.Reg) {
	id := b.Len()
	retry := fmt.Sprintf("msq_deq_%d", id)
	empty := fmt.Sprintf("msq_deq_empty_%d", id)
	done := fmt.Sprintf("msq_deq_done_%d", id)
	b.Label(retry)
	c.Load(b, o.LoadPtr, rH, rQ, 0) // h = head
	c.Load(b, o.LoadPtr, rT, rQ, 1) // t = tail
	b.Load(rN, rH, 1)               // n = h->next (dependent)
	b.Cmp(rH, rT)
	b.Bne("msq_deq_pop_" + itoa(id))
	// head == tail: empty, or tail lagging.
	b.CmpImm(rN, 0)
	b.Beq(empty)
	c.CompareExchange(b, Relaxed, rStatus, rT, rN, rQ, 1) // help
	b.B(retry)
	b.Label("msq_deq_pop_" + itoa(id))
	b.CmpImm(rN, 0)
	b.Beq(retry) // inconsistent snapshot; retry
	// Read the value out of the successor before swinging head.
	b.Load(rVal, rN, 0)
	c.CompareExchange(b, o.SwingCAS, rStatus, rH, rN, rQ, 0)
	b.CmpImm(rStatus, 1)
	b.Bne(retry)
	b.Mov(rNode, rH) // the old dummy is retired
	b.B(done)
	b.Label(empty)
	b.MovImm(rNode, 0)
	b.MovImm(rVal, -1)
	b.Label(done)
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }
