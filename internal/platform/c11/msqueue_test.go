package c11

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// queueMachine builds 2 enqueuer + 2 dequeuer cores over one Michael-Scott
// queue.  Enqueuers insert 1000*(p+1)+i for i in [0,perProducer);
// dequeuers each log perProducer values.
func queueMachine(t *testing.T, prof *arch.Profile, o QueueOrders, seed int64) (*sim.Machine, int64, int64) {
	t.Helper()
	const (
		qAddr       = int64(0)
		dummyAddr   = int64(64)
		arenaBase   = int64(1024)
		logBase     = int64(8192)
		perProducer = 30
	)
	c := New(Config{Prof: prof, Strategy: Barriers()})
	m, err := sim.New(prof, sim.Config{Cores: 4, MemWords: 1 << 14, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	QueueInit(m.WriteMem, qAddr, dummyAddr)
	for p := 0; p < 2; p++ {
		b := arch.NewBuilder()
		b.MovImm(2, 0)
		b.Label("enq")
		b.Lsl(3, 2, 1)
		b.AddImm(3, 3, arenaBase+int64(p)*2048)
		b.AddImm(4, 2, int64(1000*(p+1)))
		b.Store(4, 3, 0) // node.value
		c.Enqueue(b, o, 3, 1, 7, 8, 9)
		b.AddImm(2, 2, 1)
		b.CmpImm(2, perProducer)
		b.Blt("enq")
		b.Halt()
		m.SetReg(p, 1, qAddr)
		if err := m.LoadProgram(p, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 2; q++ {
		b := arch.NewBuilder()
		b.MovImm(2, 0)
		b.Label("deq")
		c.Dequeue(b, o, 3, 4, 1, 7, 8, 10, 9)
		b.CmpImm(3, 0)
		b.Beq("deq") // empty: retry
		b.Mov(5, 2)
		b.AddImm(5, 5, logBase+int64(q)*1024)
		b.Store(4, 5, 0)
		b.AddImm(2, 2, 1)
		b.CmpImm(2, perProducer)
		b.Blt("deq")
		b.Halt()
		core := 2 + q
		m.SetReg(core, 1, qAddr)
		if err := m.LoadProgram(core, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	return m, logBase, perProducer
}

// TestMSQueueExactlyOnceFIFO checks, under both correct ordering choices
// and on both machines: every enqueued value is dequeued exactly once, and
// within each dequeuer's log the values of one producer appear in
// increasing order (the FIFO property through linearization).
func TestMSQueueExactlyOnceFIFO(t *testing.T) {
	seeds := []int64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for name, prof := range arch.Profiles() {
		for _, o := range []QueueOrders{QueueReleaseAcquire(), QueueAllSeqCst()} {
			for _, seed := range seeds {
				m, logBase, per := queueMachine(t, prof, o, seed)
				res, err := m.Run(80_000_000)
				if err != nil || !res.AllHalted {
					t.Fatalf("%s seed %d: err=%v halted=%v", name, seed, err, res.AllHalted)
				}
				seen := map[int64]int{}
				for q := 0; q < 2; q++ {
					lastPerProducer := map[int64]int64{1: -1, 2: -1}
					for i := int64(0); i < per; i++ {
						v := m.ReadMem(logBase + int64(q)*1024 + i)
						seen[v]++
						prod := v / 1000
						if v%1000 < 0 || (prod != 1 && prod != 2) {
							t.Fatalf("%s seed %d: alien value %d", name, seed, v)
						}
						if v <= lastPerProducer[prod] {
							t.Errorf("%s seed %d: dequeuer %d saw producer %d out of order (%d after %d)",
								name, seed, q, prod, v, lastPerProducer[prod])
						}
						lastPerProducer[prod] = v
					}
				}
				if len(seen) != int(2*per) {
					t.Fatalf("%s seed %d: %d distinct values, want %d", name, seed, len(seen), 2*per)
				}
				for v, n := range seen {
					if n != 1 {
						t.Errorf("%s seed %d: value %d dequeued %d times", name, seed, v, n)
					}
				}
			}
		}
	}
}
