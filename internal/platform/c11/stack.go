package c11

import (
	"fmt"

	"repro/internal/arch"
)

// This file emits a Treiber stack over the C11 atomics — the "lock-free
// stack or queue" the paper's introduction names as a canonical place
// where a systems programmer must pick orderings and wants to know what
// the weaker ones buy.
//
// Memory layout: the stack head is one word; nodes are two words
// (value, next) in per-thread arenas so freed nodes are never reused
// (no ABA).
//
//	node+0: value
//	node+1: next (node address, 0 = bottom)

// StackOrders selects the orderings of the stack's three atomic accesses.
type StackOrders struct {
	// PushCAS is the success order of the push's head CAS (Release in
	// correct code: the node's initialisation must be visible before the
	// node is).
	PushCAS Order
	// PopLoad is the order of the pop's head load (Acquire, or Consume
	// when the traversal carries a dependency, as it does here).
	PopLoad Order
	// PopCAS is the success order of the pop's head CAS.
	PopCAS Order
}

// ReleaseAcquire returns the canonical correct orderings.
func ReleaseAcquire() StackOrders {
	return StackOrders{PushCAS: Release, PopLoad: Consume, PopCAS: Relaxed}
}

// AllSeqCst returns the defensive orderings (every access seq_cst).
func AllSeqCst() StackOrders {
	return StackOrders{PushCAS: SeqCst, PopLoad: SeqCst, PopCAS: SeqCst}
}

// AllRelaxed returns the broken orderings (atomicity only): pushes can
// publish nodes whose contents are not yet visible.
func AllRelaxed() StackOrders {
	return StackOrders{PushCAS: Relaxed, PopLoad: Relaxed, PopCAS: Relaxed}
}

// StackPush emits a push of the node whose address is in rNode (its value
// and next fields at +0/+1) onto the stack whose head word is [rHead+0].
// Clobbers rTmp and the platform scratch registers.
func (c *C11) StackPush(b *arch.Builder, o StackOrders, rNode, rHead, rTmp, rStatus arch.Reg) {
	retry := fmt.Sprintf("tpush_%d", b.Len())
	b.Label(retry)
	// Read the current head (relaxed: the CAS validates it).
	c.Load(b, Relaxed, rTmp, rHead, 0)
	// node.next = head (plain store: ordered by the release CAS).
	b.Store(rTmp, rNode, 1)
	// CAS head: expected rTmp -> desired rNode.
	c.CompareExchange(b, o.PushCAS, rStatus, rTmp, rNode, rHead, 0)
	b.CmpImm(rStatus, 1)
	b.Bne(retry)
}

// StackPop emits a pop: rNode receives the popped node's address (0 when
// the stack was empty) and rVal its value.  Clobbers rTmp/rStatus and the
// platform scratch registers.
func (c *C11) StackPop(b *arch.Builder, o StackOrders, rNode, rVal, rHead, rTmp, rStatus arch.Reg) {
	retry := fmt.Sprintf("tpop_%d", b.Len())
	empty := fmt.Sprintf("tpop_empty_%d", b.Len())
	done := fmt.Sprintf("tpop_done_%d", b.Len())
	b.Label(retry)
	c.Load(b, o.PopLoad, rNode, rHead, 0)
	b.CmpImm(rNode, 0)
	b.Beq(empty)
	// next = node->next: an address-dependent load, which is what makes
	// memory_order_consume sufficient for PopLoad.
	b.Load(rTmp, rNode, 1)
	c.CompareExchange(b, o.PopCAS, rStatus, rNode, rTmp, rHead, 0)
	b.CmpImm(rStatus, 1)
	b.Bne(retry)
	b.Load(rVal, rNode, 0) // dependent read of the payload
	b.B(done)
	b.Label(empty)
	b.MovImm(rVal, -1)
	b.Label(done)
}
