// Package c11 models a C11/C++11 atomics implementation over the weak
// machines — the paper's §6 suggestion that "similar modifications could be
// made to a C11 compiler such as GCC", and its §1 observation that
// establishing correctness criteria for lock-free structures is a core
// systems-programmer use of the WMM.
//
// Each memory_order lowering point is an instrumentable code path, exactly
// like the JVM's elemental barriers and the kernel's macros, so the
// sensitivity methodology applies unchanged: which memory_order a hot
// atomic uses is a fencing-strategy decision whose cost can be measured
// per benchmark.
//
// The lowerings follow the standard mappings (Sewell et al.'s C/C++11 to
// hardware mapping tables):
//
//	order          ARMv8 load        ARMv8 store        POWER load            POWER store
//	relaxed        ldr               str                ld                    st
//	consume        ldr (+addr dep)   —                  ld (+addr dep)        —
//	acquire        ldr; dmb ishld    —                  ld; lwsync*           —
//	release        —                 dmb ishst*; str    —                     lwsync; st
//	seq_cst        ldar              stlr               hwsync; ld; lwsync*   hwsync; st
//
// (*this implementation's choices where several valid mappings exist; the
// Strategy type selects between barrier-based and acq/rel-instruction
// lowerings on ARMv8, mirroring the paper's JDK8/JDK9 comparison.)
package c11

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/costfn"
)

// Order is a C11 memory_order.
type Order uint8

const (
	// Relaxed is memory_order_relaxed: atomicity only.
	Relaxed Order = iota
	// Consume is memory_order_consume: dependency ordering (compiles to a
	// plain load on both targets; the dependency does the work).
	Consume
	// Acquire is memory_order_acquire.
	Acquire
	// Release is memory_order_release.
	Release
	// AcqRel is memory_order_acq_rel (read-modify-writes only).
	AcqRel
	// SeqCst is memory_order_seq_cst.
	SeqCst

	numOrders
)

var orderNames = [numOrders]string{
	"relaxed", "consume", "acquire", "release", "acq_rel", "seq_cst",
}

// String returns the C11 spelling without the memory_order_ prefix.
func (o Order) String() string {
	if int(o) < len(orderNames) {
		return orderNames[o]
	}
	return fmt.Sprintf("order(%d)", uint8(o))
}

// Code paths: one per memory_order lowering point, plus the CAS path.
const (
	PathRelaxed arch.PathID = iota + 1
	PathConsume
	PathAcquire
	PathRelease
	PathAcqRel
	PathSeqCst
	PathCAS
	// NumPaths is one past the last path id.
	NumPaths
)

// Paths lists all instrumentable code paths.
var Paths = []arch.PathID{
	PathRelaxed, PathConsume, PathAcquire, PathRelease, PathAcqRel, PathSeqCst, PathCAS,
}

// PathName returns the human-readable name of a c11 code path.
func PathName(p arch.PathID) string {
	switch p {
	case PathRelaxed:
		return "relaxed"
	case PathConsume:
		return "consume"
	case PathAcquire:
		return "acquire"
	case PathRelease:
		return "release"
	case PathAcqRel:
		return "acq_rel"
	case PathSeqCst:
		return "seq_cst"
	case PathCAS:
		return "cas"
	}
	return "?"
}

// PathFor returns the code path of an order.
func PathFor(o Order) arch.PathID {
	switch o {
	case Relaxed:
		return PathRelaxed
	case Consume:
		return PathConsume
	case Acquire:
		return PathAcquire
	case Release:
		return PathRelease
	case AcqRel:
		return PathAcqRel
	default:
		return PathSeqCst
	}
}

// Strategy selects the lowering family on ARMv8 (the paper's barrier vs
// acq/rel-instruction axis); POWER always uses the sync-based mapping.
type Strategy struct {
	Name string
	// UseAcqRel lowers acquire/seq_cst loads to ldar and release/seq_cst
	// stores to stlr on the MCA profile, instead of dmb sequences.
	UseAcqRel bool
}

// Barriers returns the dmb-based lowering strategy.
func Barriers() Strategy { return Strategy{Name: "barriers"} }

// AcqRelInstrs returns the ldar/stlr lowering strategy.
func AcqRelInstrs() Strategy { return Strategy{Name: "acq-rel", UseAcqRel: true} }

// Config assembles a C11 code generator.
type Config struct {
	Prof     *arch.Profile
	Strategy Strategy
	Inject   map[arch.PathID]costfn.Injection
}

// C11 generates atomic accesses for one configuration.
type C11 struct {
	cfg Config
}

// New returns a C11 code generator.
func New(cfg Config) *C11 { return &C11{cfg: cfg} }

// Prof returns the generator's profile.
func (c *C11) Prof() *arch.Profile { return c.cfg.Prof }

func (c *C11) inject(b *arch.Builder, p arch.PathID) {
	old := b.SetSite(p)
	c.cfg.Inject[p].Apply(b)
	b.SetSite(old)
}

func (c *C11) mca() bool { return c.cfg.Prof.Flavor == arch.MCA }

// Load emits an atomic load of [rn+off] into rd with the given order.
func (c *C11) Load(b *arch.Builder, o Order, rd, rn arch.Reg, off int64) {
	c.inject(b, PathFor(o))
	switch o {
	case Relaxed, Consume:
		// Consume relies on the dependency the caller carries through
		// rd; no fence is emitted on either target.
		b.Load(rd, rn, off)
	case Acquire:
		if c.mca() && c.cfg.Strategy.UseAcqRel {
			b.LoadAcq(rd, rn, off)
			return
		}
		b.Load(rd, rn, off)
		if c.mca() {
			b.Fence(arch.DMBIshLd)
		} else {
			b.Fence(arch.LwSync)
		}
	default: // SeqCst (and AcqRel used as a load order degrades to it)
		if c.mca() {
			if c.cfg.Strategy.UseAcqRel {
				b.LoadAcq(rd, rn, off)
				return
			}
			b.Load(rd, rn, off)
			b.Fence(arch.DMBIsh)
			return
		}
		b.Fence(arch.HwSync)
		b.Load(rd, rn, off)
		b.Fence(arch.LwSync)
	}
}

// Store emits an atomic store of rs to [rn+off] with the given order.
func (c *C11) Store(b *arch.Builder, o Order, rs, rn arch.Reg, off int64) {
	c.inject(b, PathFor(o))
	switch o {
	case Relaxed, Consume:
		b.Store(rs, rn, off)
	case Release:
		if c.mca() && c.cfg.Strategy.UseAcqRel {
			b.StoreRel(rs, rn, off)
			return
		}
		if c.mca() {
			b.Fence(arch.DMBIshSt)
		} else {
			b.Fence(arch.LwSync)
		}
		b.Store(rs, rn, off)
	default: // SeqCst
		if c.mca() {
			if c.cfg.Strategy.UseAcqRel {
				b.StoreRel(rs, rn, off)
				return
			}
			b.Fence(arch.DMBIsh)
			b.Store(rs, rn, off)
			b.Fence(arch.DMBIsh)
			return
		}
		b.Fence(arch.HwSync)
		b.Store(rs, rn, off)
	}
}

// Fence emits atomic_thread_fence(o).
func (c *C11) Fence(b *arch.Builder, o Order) {
	c.inject(b, PathFor(o))
	switch o {
	case Relaxed, Consume:
		// No instruction.
	case Acquire:
		if c.mca() {
			b.Fence(arch.DMBIshLd)
		} else {
			b.Fence(arch.LwSync)
		}
	case Release, AcqRel:
		if c.mca() {
			b.Fence(arch.DMBIsh) // release fences need ld+st ordering
		} else {
			b.Fence(arch.LwSync)
		}
	default:
		if c.mca() {
			b.Fence(arch.DMBIsh)
		} else {
			b.Fence(arch.HwSync)
		}
	}
}

// Scratch registers used by the read-modify-write emitters.
const (
	scrOld    arch.Reg = 21
	scrStatus arch.Reg = 22
)

// CompareExchange emits a strong compare-exchange on [rn+off]: if the
// location holds expected, store desired; rd receives 1 on success, 0 on
// failure (the C11 result convention).  The success order is o; failures
// use relaxed, as compare_exchange_strong(..., o, relaxed) would.
// expected and desired must not alias the scratch registers.
func (c *C11) CompareExchange(b *arch.Builder, o Order, rd, expected, desired, rn arch.Reg, off int64) {
	c.inject(b, PathCAS)
	c.inject(b, PathFor(o))
	retry := fmt.Sprintf("c11_cas_%d", b.Len())
	done := fmt.Sprintf("c11_cas_done_%d", b.Len())
	fail := fmt.Sprintf("c11_cas_fail_%d", b.Len())
	// Leading fence for release/seq_cst success orders.  The acq/rel
	// instruction strategy still uses the barrier form here: this ISA has
	// no store-release exclusive (stlxr), and a bare store-exclusive
	// commits ahead of buffered stores — the release ordering must come
	// from a fence.  (Only plain loads/stores benefit from ldar/stlr.)
	switch o {
	case Release, AcqRel, SeqCst:
		if c.mca() {
			b.Fence(arch.DMBIsh)
		} else {
			if o == SeqCst {
				b.Fence(arch.HwSync)
			} else {
				b.Fence(arch.LwSync)
			}
		}
	}
	b.Label(retry)
	b.LoadEx(scrOld, rn, off)
	b.Cmp(scrOld, expected)
	b.Bne(fail)
	b.StoreEx(scrStatus, desired, rn, off)
	b.CmpImm(scrStatus, 0)
	b.Bne(retry)
	b.MovImm(rd, 1)
	// Trailing fence for acquire/seq_cst success orders.
	switch o {
	case Acquire, AcqRel, SeqCst:
		if c.mca() {
			b.Fence(arch.DMBIshLd)
		} else {
			b.Fence(arch.LwSync)
		}
	}
	b.B(done)
	b.Label(fail)
	b.MovImm(rd, 0)
	b.Label(done)
}

// FetchAdd emits an atomic fetch_add of delta on [rn+off]; rd receives the
// new value.
func (c *C11) FetchAdd(b *arch.Builder, o Order, rd, rn arch.Reg, off, delta int64) {
	c.inject(b, PathCAS)
	c.inject(b, PathFor(o))
	switch o {
	case Release, AcqRel, SeqCst:
		if c.mca() {
			b.Fence(arch.DMBIsh)
		} else if o == SeqCst {
			b.Fence(arch.HwSync)
		} else {
			b.Fence(arch.LwSync)
		}
	}
	retry := fmt.Sprintf("c11_faa_%d", b.Len())
	b.Label(retry)
	b.LoadEx(scrOld, rn, off)
	b.AddImm(rd, scrOld, delta)
	b.StoreEx(scrStatus, rd, rn, off)
	b.CmpImm(scrStatus, 0)
	b.Bne(retry)
	switch o {
	case Acquire, AcqRel, SeqCst:
		if c.mca() {
			b.Fence(arch.DMBIshLd)
		} else {
			b.Fence(arch.LwSync)
		}
	}
}
