package platform_test

import (
	"encoding/json"
	"testing"

	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
)

// TestStrategySpaceRoundTrip is the property test over the enumerable
// strategy spaces: every enumerated strategy must survive the
// Strategy → Spec → JSON → Spec → Strategy round trip exactly, including
// its canonical name.
func TestStrategySpaceRoundTrip(t *testing.T) {
	for _, st := range jvm.Enumerate() {
		sp := st.Spec()
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("jvm %s: marshal: %v", st.Name, err)
		}
		var sp2 jvm.Spec
		if err := json.Unmarshal(data, &sp2); err != nil {
			t.Fatalf("jvm %s: unmarshal: %v", st.Name, err)
		}
		got, err := jvm.FromSpec(sp2)
		if err != nil {
			t.Fatalf("jvm %s: FromSpec: %v", st.Name, err)
		}
		if got != st {
			t.Errorf("jvm round trip: got %+v, want %+v", got, st)
		}
	}
	for _, st := range kernel.Enumerate() {
		sp := st.Spec()
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("kernel %s: marshal: %v", st.Name, err)
		}
		var sp2 kernel.Spec
		if err := json.Unmarshal(data, &sp2); err != nil {
			t.Fatalf("kernel %s: unmarshal: %v", st.Name, err)
		}
		got, err := kernel.FromSpec(sp2)
		if err != nil {
			t.Fatalf("kernel %s: FromSpec: %v", st.Name, err)
		}
		if got != st {
			t.Errorf("kernel round trip: got %+v, want %+v", got, st)
		}
	}
	for _, st := range c11.Enumerate() {
		sp := st.Spec()
		data, err := json.Marshal(sp)
		if err != nil {
			t.Fatalf("c11 %s: marshal: %v", st.Name, err)
		}
		var sp2 c11.Spec
		if err := json.Unmarshal(data, &sp2); err != nil {
			t.Fatalf("c11 %s: unmarshal: %v", st.Name, err)
		}
		got, err := c11.FromSpec(sp2)
		if err != nil {
			t.Fatalf("c11 %s: FromSpec: %v", st.Name, err)
		}
		if got != st {
			t.Errorf("c11 round trip: got %+v, want %+v", got, st)
		}
	}
}

// TestStrategySpaceNamedCorners pins that the two named JDK strategies
// appear verbatim in the enumerated JVM space.
func TestStrategySpaceNamedCorners(t *testing.T) {
	want := map[string]jvm.Strategy{
		"jdk8-barriers": jvm.JDK8(),
		"jdk9-acqrel":   jvm.JDK9(),
	}
	found := map[string]bool{}
	for _, st := range jvm.Enumerate() {
		if w, ok := want[st.Name]; ok {
			if st != w {
				t.Errorf("enumerated %s = %+v, want verbatim %+v", st.Name, st, w)
			}
			found[st.Name] = true
		}
	}
	for name := range want {
		if !found[name] {
			t.Errorf("named strategy %s missing from enumerated space", name)
		}
	}
}

// TestStrategySpaceDistinctNames guards the determinism argument: strategy
// names feed the measurement-noise decorrelation hash, so every candidate
// in a space must carry a distinct canonical name.
func TestStrategySpaceDistinctNames(t *testing.T) {
	check := func(platform string, names []string) {
		seen := map[string]bool{}
		for _, n := range names {
			if n == "" {
				t.Errorf("%s: empty strategy name", platform)
			}
			if seen[n] {
				t.Errorf("%s: duplicate strategy name %q", platform, n)
			}
			seen[n] = true
		}
	}
	var jn, kn, cn []string
	for _, st := range jvm.Enumerate() {
		jn = append(jn, st.Name)
	}
	for _, st := range kernel.Enumerate() {
		kn = append(kn, st.Name)
	}
	for _, st := range c11.Enumerate() {
		cn = append(cn, st.Name)
	}
	check("jvm", jn)
	check("kernel", kn)
	check("c11", cn)
}

// TestSpecValidation pins the decode errors for malformed specs.
func TestSpecValidation(t *testing.T) {
	if _, err := jvm.FromSpec(jvm.Spec{Loads: "ldar", Stores: "barriers"}); err == nil {
		t.Error("jvm: bad lowering accepted")
	}
	if _, err := jvm.FromSpec(jvm.Spec{Loads: "acqrel", Stores: "acqrel", DropStoreLoad: true}); err == nil {
		t.Error("jvm: drop_storeload with acqrel stores accepted")
	}
	if _, err := kernel.FromSpec(kernel.Spec{RBD: "dmb st"}); err == nil {
		t.Error("kernel: bad rbd accepted")
	}
	if _, err := c11.FromSpec(c11.Spec{Lowering: "fences"}); err == nil {
		t.Error("c11: bad lowering accepted")
	}
}
