// Package resultcache is a content-addressed cache of serialized
// experiment results with single-flight admission.  Keys are canonical
// content hashes (the engine derives them from everything that
// determines a result's bytes: experiment, sample schedule, seed, engine
// version), values are opaque byte slices — the cache never interprets
// what it stores, which keeps the dependency arrow pointing from the
// engine to the cache.
//
// The cache has two layers: a bounded in-memory LRU, and an optional
// Persist backend (internal/runstore implements it as cache/<key>.json
// files) so deduplication survives restarts.  Admission is single-
// flight: the first requester of a missing key becomes its *leader* and
// must settle the key with Fulfill or Abandon; concurrent requesters of
// the same key become *followers* and are called back with the leader's
// outcome instead of executing the work again.  That is what makes "two
// identical runs submitted concurrently execute once" a structural
// guarantee rather than a race.
package resultcache

import (
	"sync"

	"repro/internal/metrics"
)

// State classifies an Acquire outcome.
type State int

const (
	// Hit: the value was returned; no execution is needed.
	Hit State = iota
	// Leader: the key is absent and this caller now owns its in-flight
	// slot.  Execute the work, then Fulfill or Abandon the key —
	// followers are blocked on that settlement.
	Leader
	// Following: another caller is already leading this key; the
	// follower callback passed to Acquire fires when the leader settles.
	Following
)

// Sources reported on hits (and recorded as cache provenance by the
// engine).
const (
	SourceMemory       = "memory"       // served from the in-memory LRU
	SourceStore        = "store"        // served from the persistent layer
	SourceSingleflight = "singleflight" // delivered by a concurrent leader
)

// Persist is the optional durable layer.  *runstore.Store implements it.
// Implementations must be safe for concurrent use; Get misses return
// (nil, false).
type Persist interface {
	CacheGet(key string) ([]byte, bool)
	CachePut(key string, data []byte) error
}

// Options configures a Cache.
type Options struct {
	// MaxEntries bounds the in-memory layer (default 256; the persistent
	// layer is unbounded here and swept by the server's retention GC).
	MaxEntries int
	// MaxBytes bounds the in-memory layer's total value bytes (default
	// 64 MiB).
	MaxBytes int64
	// Persist, when non-nil, backs the memory layer with durable
	// storage: misses fall through to it and Fulfill writes through.
	Persist Persist
	// Registry receives the cache's metrics; nil creates a private one.
	Registry *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxEntries <= 0 {
		o.MaxEntries = 256
	}
	if o.MaxBytes <= 0 {
		o.MaxBytes = 64 << 20
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	return o
}

// entry is one committed value with its LRU bookkeeping.
type entry struct {
	key        string
	data       []byte
	prev, next *entry // LRU list; head = most recent
}

// flight is one in-flight key: the leader is implicit (whoever got
// State Leader), followers queue here until settlement.
type flight struct {
	followers []func(data []byte, ok bool)
}

// cacheMetrics are the cache's instruments.
type cacheMetrics struct {
	hits      *metrics.Counter // by source
	misses    *metrics.Counter
	evictions *metrics.Counter
	merged    *metrics.Counter // followers absorbed by single-flight
	puts      *metrics.Counter
	entries   *metrics.Gauge
	bytes     *metrics.Gauge
}

func newCacheMetrics(r *metrics.Registry) *cacheMetrics {
	return &cacheMetrics{
		hits:      r.Counter("wmm_resultcache_hits_total", "Result-cache hits, by source (memory/store).", "source"),
		misses:    r.Counter("wmm_resultcache_misses_total", "Result-cache misses (a leader was appointed to execute)."),
		evictions: r.Counter("wmm_resultcache_evictions_total", "Entries evicted from the in-memory result cache by its LRU bound."),
		merged:    r.Counter("wmm_resultcache_singleflight_merged_total", "Requests absorbed as followers of an in-flight identical request."),
		puts:      r.Counter("wmm_resultcache_stores_total", "Results committed to the cache by leaders."),
		entries:   r.Gauge("wmm_resultcache_entries", "Entries resident in the in-memory result cache."),
		bytes:     r.Gauge("wmm_resultcache_bytes", "Value bytes resident in the in-memory result cache."),
	}
}

// Cache is the two-layer content-addressed cache.  Safe for concurrent
// use.
type Cache struct {
	opt Options
	met *cacheMetrics

	mu       sync.Mutex
	entries  map[string]*entry
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
	inflight map[string]*flight

	// plain counters behind Stats (the metrics registry aggregates by
	// label and has no cheap "sum over labels" read-back)
	hits, misses, evicted, mergedN int64
}

// New builds a cache.
func New(o Options) *Cache {
	o = o.withDefaults()
	return &Cache{
		opt:      o,
		met:      newCacheMetrics(o.Registry),
		entries:  map[string]*entry{},
		inflight: map[string]*flight{},
	}
}

// Stats is a point-in-time snapshot for tests and diagnostics.
type Stats struct {
	Entries   int
	Bytes     int64
	Inflight  int
	Hits      int64
	Misses    int64
	Evictions int64
	Merged    int64
}

// Stats snapshots the cache.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Inflight:  len(c.inflight),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
		Merged:    c.mergedN,
	}
}

// Acquire resolves a key atomically into one of three states:
//
//   - Hit: data holds the cached value and source says which layer
//     served it (SourceMemory or SourceStore);
//   - Leader: the caller must execute the work and settle the key with
//     Fulfill(key, data) on success or Abandon(key) on failure;
//   - Following: follower will be invoked exactly once when the current
//     leader settles — with (data, true) on Fulfill, (nil, false) on
//     Abandon.  follower runs on the leader's goroutine; do not block.
//
// follower may be nil only if the caller can guarantee the key is not
// in flight (it is invoked for the Following state alone).
func (c *Cache) Acquire(key string, follower func(data []byte, ok bool)) (data []byte, source string, state State) {
	c.mu.Lock()
	if ent, ok := c.entries[key]; ok {
		c.touchLocked(ent)
		c.hits++
		c.mu.Unlock()
		c.met.hits.Inc(SourceMemory)
		return ent.data, SourceMemory, Hit
	}
	if fl, ok := c.inflight[key]; ok {
		fl.followers = append(fl.followers, follower)
		c.mergedN++
		c.mu.Unlock()
		c.met.merged.Inc()
		return nil, "", Following
	}
	// Persistent layer, probed while holding the admission lock: entries
	// are small and the atomicity is what prevents two concurrent
	// requesters from both missing and both executing.
	if p := c.opt.Persist; p != nil {
		if data, ok := p.CacheGet(key); ok {
			c.insertLocked(key, data)
			c.hits++
			c.mu.Unlock()
			c.met.hits.Inc(SourceStore)
			return data, SourceStore, Hit
		}
	}
	c.inflight[key] = &flight{}
	c.misses++
	c.mu.Unlock()
	c.met.misses.Inc()
	return nil, "", Leader
}

// Fulfill settles a led key with its computed value: the value is
// committed to both layers and every follower is called back with it.
// Only the caller that got State Leader for the key may call it.
func (c *Cache) Fulfill(key string, data []byte) {
	c.mu.Lock()
	fl := c.inflight[key]
	delete(c.inflight, key)
	c.insertLocked(key, data)
	c.mu.Unlock()
	c.met.puts.Inc()
	if p := c.opt.Persist; p != nil {
		// Write-through is best-effort: a failed put degrades restart
		// dedupe, never the run.
		_ = p.CachePut(key, data)
	}
	if fl != nil {
		for _, f := range fl.followers {
			if f != nil {
				f(data, true)
			}
		}
	}
}

// Abandon settles a led key without a value (execution failed or was
// cancelled): followers are called back with ok=false and must arrange
// their own execution.  The key becomes acquirable again.
func (c *Cache) Abandon(key string) {
	c.mu.Lock()
	fl := c.inflight[key]
	delete(c.inflight, key)
	c.mu.Unlock()
	if fl != nil {
		for _, f := range fl.followers {
			if f != nil {
				f(nil, false)
			}
		}
	}
}

// Delete drops a committed entry from the in-memory layer (the
// poisoned-entry escape: a value that fails to decode is removed so the
// next Acquire leads a fresh execution).  The persistent copy, if any,
// is left to the retention sweep.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ent, ok := c.entries[key]; ok {
		c.unlinkLocked(ent)
		delete(c.entries, key)
		c.bytes -= int64(len(ent.data))
		c.met.entries.Set(float64(len(c.entries)))
		c.met.bytes.Set(float64(c.bytes))
	}
}

// insertLocked commits a value and enforces the LRU bounds; mu held.
func (c *Cache) insertLocked(key string, data []byte) {
	if old, ok := c.entries[key]; ok {
		c.bytes += int64(len(data)) - int64(len(old.data))
		old.data = data
		c.touchLocked(old)
	} else {
		ent := &entry{key: key, data: data}
		c.entries[key] = ent
		c.bytes += int64(len(data))
		c.linkFrontLocked(ent)
	}
	for (len(c.entries) > c.opt.MaxEntries || c.bytes > c.opt.MaxBytes) && c.tail != nil && c.tail != c.entries[key] {
		victim := c.tail
		c.unlinkLocked(victim)
		delete(c.entries, victim.key)
		c.bytes -= int64(len(victim.data))
		c.evicted++
		c.met.evictions.Inc()
	}
	c.met.entries.Set(float64(len(c.entries)))
	c.met.bytes.Set(float64(c.bytes))
}

// touchLocked moves an entry to the LRU front; mu held.
func (c *Cache) touchLocked(ent *entry) {
	if c.head == ent {
		return
	}
	c.unlinkLocked(ent)
	c.linkFrontLocked(ent)
}

func (c *Cache) linkFrontLocked(ent *entry) {
	ent.prev = nil
	ent.next = c.head
	if c.head != nil {
		c.head.prev = ent
	}
	c.head = ent
	if c.tail == nil {
		c.tail = ent
	}
}

func (c *Cache) unlinkLocked(ent *entry) {
	if ent.prev != nil {
		ent.prev.next = ent.next
	} else if c.head == ent {
		c.head = ent.next
	}
	if ent.next != nil {
		ent.next.prev = ent.prev
	} else if c.tail == ent {
		c.tail = ent.prev
	}
	ent.prev, ent.next = nil, nil
}
