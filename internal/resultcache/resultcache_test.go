package resultcache

import (
	"fmt"
	"sync"
	"testing"
)

// fakePersist is an in-memory Persist backend.
type fakePersist struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newFakePersist() *fakePersist { return &fakePersist{m: map[string][]byte{}} }

func (p *fakePersist) CacheGet(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	data, ok := p.m[key]
	return data, ok
}

func (p *fakePersist) CachePut(key string, data []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[key] = append([]byte(nil), data...)
	return nil
}

// lead acquires the key expecting Leader state.
func lead(t *testing.T, c *Cache, key string) {
	t.Helper()
	_, _, state := c.Acquire(key, nil)
	if state != Leader {
		t.Fatalf("Acquire(%q) = %v, want Leader", key, state)
	}
}

func TestHitAfterFulfill(t *testing.T) {
	c := New(Options{})
	lead(t, c, "k1")
	c.Fulfill("k1", []byte("v1"))

	data, src, state := c.Acquire("k1", nil)
	if state != Hit || src != SourceMemory || string(data) != "v1" {
		t.Fatalf("Acquire = (%q, %q, %v), want (v1, memory, Hit)", data, src, state)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestAbandonReleasesKey(t *testing.T) {
	c := New(Options{})
	lead(t, c, "k")
	c.Abandon("k")
	// The key must be acquirable again (a new leader, not a hit).
	lead(t, c, "k")
	c.Fulfill("k", []byte("v"))
	if _, _, state := c.Acquire("k", nil); state != Hit {
		t.Fatalf("post-fulfill Acquire = %v, want Hit", state)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		lead(t, c, k)
		c.Fulfill(k, []byte("v"))
	}
	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, 1 eviction", st)
	}
	// k0 was least recently used and must be gone; k2 must remain.
	if _, _, state := c.Acquire("k0", nil); state != Leader {
		t.Errorf("evicted k0 Acquire = %v, want Leader", state)
	}
	if _, _, state := c.Acquire("k2", nil); state != Hit {
		t.Errorf("resident k2 Acquire = %v, want Hit", state)
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(Options{MaxEntries: 2})
	for _, k := range []string{"a", "b"} {
		lead(t, c, k)
		c.Fulfill(k, []byte("v"))
	}
	// Touch "a" so "b" becomes the LRU victim when "c" is inserted.
	if _, _, state := c.Acquire("a", nil); state != Hit {
		t.Fatal("expected hit on a")
	}
	lead(t, c, "c")
	c.Fulfill("c", []byte("v"))
	if _, _, state := c.Acquire("a", nil); state != Hit {
		t.Errorf("recently used a evicted")
	}
	if _, _, state := c.Acquire("b", nil); state != Leader {
		t.Errorf("LRU b survived eviction")
	}
}

func TestEvictionByBytes(t *testing.T) {
	c := New(Options{MaxEntries: 100, MaxBytes: 10})
	lead(t, c, "big1")
	c.Fulfill("big1", make([]byte, 8))
	lead(t, c, "big2")
	c.Fulfill("big2", make([]byte, 8))
	st := c.Stats()
	if st.Entries != 1 || st.Bytes != 8 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 1 entry of 8 bytes after byte-bound eviction", st)
	}
	// The just-inserted entry survives even when alone it exceeds the
	// bound (caching something beats caching nothing).
	lead(t, c, "huge")
	c.Fulfill("huge", make([]byte, 64))
	if _, _, state := c.Acquire("huge", nil); state != Hit {
		t.Errorf("oversized entry was evicted on insert")
	}
}

func TestPersistFallthrough(t *testing.T) {
	p := newFakePersist()
	p.m["k"] = []byte("durable")
	c := New(Options{Persist: p})

	data, src, state := c.Acquire("k", nil)
	if state != Hit || src != SourceStore || string(data) != "durable" {
		t.Fatalf("Acquire = (%q, %q, %v), want (durable, store, Hit)", data, src, state)
	}
	// The store hit must be promoted into memory.
	if _, src, state := c.Acquire("k", nil); state != Hit || src != SourceMemory {
		t.Errorf("second Acquire = (%q, %v), want memory hit", src, state)
	}
}

func TestFulfillWritesThrough(t *testing.T) {
	p := newFakePersist()
	c := New(Options{Persist: p})
	lead(t, c, "k")
	c.Fulfill("k", []byte("v"))
	if data, ok := p.CacheGet("k"); !ok || string(data) != "v" {
		t.Fatalf("persist layer = (%q, %v), want write-through of v", data, ok)
	}
}

func TestDeleteDropsMemoryEntry(t *testing.T) {
	c := New(Options{})
	lead(t, c, "k")
	c.Fulfill("k", []byte("v"))
	c.Delete("k")
	if _, _, state := c.Acquire("k", nil); state != Leader {
		t.Fatalf("deleted entry still served")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after delete = %+v, want empty", st)
	}
}

func TestSingleflightFollowers(t *testing.T) {
	c := New(Options{})
	lead(t, c, "k")

	var mu sync.Mutex
	var got []string
	follower := func(data []byte, ok bool) {
		mu.Lock()
		defer mu.Unlock()
		got = append(got, fmt.Sprintf("%s/%v", data, ok))
	}
	for i := 0; i < 3; i++ {
		if _, _, state := c.Acquire("k", follower); state != Following {
			t.Fatalf("concurrent Acquire %d = %v, want Following", i, state)
		}
	}
	c.Fulfill("k", []byte("v"))
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 3 {
		t.Fatalf("%d follower callbacks, want 3", len(got))
	}
	for _, g := range got {
		if g != "v/true" {
			t.Errorf("follower saw %q, want v/true", g)
		}
	}
	if st := c.Stats(); st.Merged != 3 {
		t.Errorf("merged = %d, want 3", st.Merged)
	}
}

func TestSingleflightAbandonUnparksFollowers(t *testing.T) {
	c := New(Options{})
	lead(t, c, "k")
	called := false
	c.Acquire("k", func(data []byte, ok bool) {
		called = true
		if ok || data != nil {
			t.Errorf("abandoned follower got (%q, %v), want (nil, false)", data, ok)
		}
	})
	c.Abandon("k")
	if !called {
		t.Fatal("follower not called back on Abandon")
	}
}

// TestConcurrentSingleExecution is the core dedupe guarantee under the
// race detector: many concurrent requesters of one key observe exactly
// one leader, and every other requester receives the leader's bytes —
// via the follower callback or a cache hit — so the work runs once.
func TestConcurrentSingleExecution(t *testing.T) {
	c := New(Options{Persist: newFakePersist()})
	const n = 32
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		leaders int
		values  []string
	)
	record := func(v string) {
		mu.Lock()
		values = append(values, v)
		mu.Unlock()
	}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done := make(chan struct{})
			data, _, state := c.Acquire("k", func(data []byte, ok bool) {
				if !ok {
					t.Error("leader abandoned unexpectedly")
				}
				record(string(data))
				close(done)
			})
			switch state {
			case Leader:
				mu.Lock()
				leaders++
				mu.Unlock()
				c.Fulfill("k", []byte("the-value"))
				record("the-value")
			case Hit:
				record(string(data))
			case Following:
				<-done
			}
		}()
	}
	wg.Wait()
	if leaders != 1 {
		t.Fatalf("%d leaders, want exactly 1", leaders)
	}
	if len(values) != n {
		t.Fatalf("%d values delivered, want %d", len(values), n)
	}
	for _, v := range values {
		if v != "the-value" {
			t.Fatalf("value %q diverged", v)
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (single execution)", st.Misses)
	}
}
