// Package worker is the execution side of the sharded backend: a loop
// that leases batches of jobs — experiments, shards of generated litmus
// campaigns, or fence-optimizer cells — from a wmmd coordinator over
// the v1 API, executes them on a local engine, and uploads the results.
//
// The loop is deliberately stateless between batches.  All durability
// lives on the coordinator: if a worker dies mid-batch its lease
// expires and the coordinator re-queues the jobs, and because every job
// is fully determined by (experiment, seed, samples, short) via
// positional seed derivation, whichever process eventually executes it
// produces byte-identical results.  A worker therefore never needs to
// hand off partial state — it just stops heartbeating.
package worker

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/engine"
	"repro/internal/optimize"
	"repro/wmm/client"
)

// Config parameterises one worker loop.
type Config struct {
	// Coordinator is the wmmd base URL (used only if Client is nil).
	Coordinator string
	// ID identifies this worker in assignment records and coordinator
	// logs; required.
	ID string
	// MaxBatch caps the jobs requested per lease (0 = the
	// coordinator's default batch size).
	MaxBatch int
	// Poll is the idle interval between lease attempts when the queue
	// is empty (default 500ms).
	Poll time.Duration
	// Engine executes the jobs; required.
	Engine *engine.Engine
	// Client overrides the API client (tests, custom transports).
	Client *client.Client
	// Log receives progress lines; nil discards them.
	Log *log.Logger
}

// Run leases and executes jobs until ctx is cancelled.  Transient
// coordinator errors (unreachable, 5xx) back off and retry; the only
// non-nil return is ctx's error.
func Run(ctx context.Context, cfg Config) error {
	if cfg.ID == "" {
		return fmt.Errorf("worker: Config.ID is required")
	}
	if cfg.Engine == nil {
		return fmt.Errorf("worker: Config.Engine is required")
	}
	cl := cfg.Client
	if cl == nil {
		if cfg.Coordinator == "" {
			return fmt.Errorf("worker: Config.Coordinator or Config.Client is required")
		}
		cl = client.New(cfg.Coordinator)
	}
	logger := cfg.Log
	if logger == nil {
		logger = log.New(io.Discard, "", 0)
	}
	poll := cfg.Poll
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := cl.Lease(ctx, cfg.ID, cfg.MaxBatch)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			logger.Printf("worker %s: lease: %v (backing off)", cfg.ID, err)
			if !sleep(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		if grant.LeaseID == "" || len(grant.Jobs) == 0 {
			if !sleep(ctx, poll) {
				return ctx.Err()
			}
			continue
		}
		runBatch(ctx, cl, cfg.ID, cfg.Engine, grant, logger)
	}
}

// runBatch executes one leased batch under a heartbeat, then settles
// the lease with whatever completed.
func runBatch(ctx context.Context, cl *client.Client, id string, eng *engine.Engine, grant client.LeaseGrant, logger *log.Logger) {
	// Heartbeat at TTL/3 for the life of the batch.  If the coordinator
	// reports the lease gone (expired, coordinator restart), the batch is
	// aborted: its jobs were already re-queued, so finishing them here
	// would only produce a moot upload.
	batchCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	leaseGone := make(chan struct{})
	go func() {
		defer close(hbDone)
		interval := grant.TTL() / 3
		if interval <= 0 {
			interval = time.Second
		}
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-batchCtx.Done():
				return
			case <-t.C:
				if _, err := cl.Heartbeat(batchCtx, grant.LeaseID); err != nil {
					if batchCtx.Err() != nil {
						return
					}
					var apiErr *client.Error
					if errors.As(err, &apiErr) && apiErr.Status == 410 {
						logger.Printf("worker %s: lease %s gone; abandoning batch", id, grant.LeaseID)
						close(leaseGone)
						cancel()
						return
					}
					// Transient heartbeat failure: keep the batch running
					// and try again next tick — the TTL gives us slack.
					logger.Printf("worker %s: heartbeat %s: %v", id, grant.LeaseID, err)
				}
			}
		}
	}()

	results := make([]client.JobResult, 0, len(grant.Jobs))
	for _, job := range grant.Jobs {
		if batchCtx.Err() != nil {
			break
		}
		logger.Printf("worker %s: executing %s/%s", id, job.RunID, job.Experiment)
		var res *engine.Result
		var err error
		if job.Litmus != nil {
			// Litmus shard: regenerate the batch from the descriptor and
			// run this worker's slice — no programs cross the wire.
			res, err = engine.RunLitmusShard(batchCtx, engine.LitmusShard{
				Arch:       job.Litmus.Arch,
				GenSeed:    job.Litmus.GenSeed,
				Count:      job.Litmus.Count,
				MaxThreads: job.Litmus.MaxThreads,
				Trials:     job.Litmus.Trials,
				Seed:       job.Litmus.Seed,
				Lo:         job.Litmus.Lo,
				Hi:         job.Litmus.Hi,
			})
		} else if len(job.Optimize) > 0 {
			// Optimizer cell: the client carries the descriptor opaquely;
			// decode it here, where the engine's types are available, and
			// re-derive the gate or measurement from the spec.
			var cell optimize.Cell
			if derr := json.Unmarshal(job.Optimize, &cell); derr != nil {
				err = fmt.Errorf("undecodable optimize cell: %w", derr)
			} else {
				res, err = engine.RunOptimizeCell(batchCtx, cell)
			}
		} else {
			opts := engine.RunOptions{
				Samples: job.Samples,
				Seed:    job.Seed,
				Short:   job.Short,
			}
			if job.Adaptive != nil {
				// Same normalisation as the coordinator: the stop decision
				// is a pure function of positionally-seeded samples, so the
				// worker stops at the same n with the same values.
				opts.Adaptive = (&engine.AdaptiveSpec{
					RelPrecision: job.Adaptive.RelPrecision,
					MinSamples:   job.Adaptive.MinSamples,
					MaxSamples:   job.Adaptive.MaxSamples,
				}).Rule()
			}
			res, err = eng.RunExperiment(batchCtx, job.Experiment, opts)
		}
		if err != nil {
			// Unknown experiment or malformed shard — a protocol-level
			// mismatch, not an execution failure.  Skip it; the
			// coordinator re-queues.
			logger.Printf("worker %s: %s/%s: %v", id, job.RunID, job.Experiment, err)
			continue
		}
		if res.Status == engine.StatusCancelled && batchCtx.Err() != nil {
			// Aborted by shutdown or lease loss, not by the experiment:
			// don't upload a cancellation the coordinator will re-run.
			break
		}
		raw, err := json.Marshal(res)
		if err != nil {
			logger.Printf("worker %s: marshal %s/%s result: %v", id, job.RunID, job.Experiment, err)
			continue
		}
		results = append(results, client.JobResult{RunID: job.RunID, Experiment: job.Experiment, Result: raw})
	}

	cancel()
	<-hbDone
	select {
	case <-leaseGone:
		return // jobs already re-queued; the upload would be rejected anyway
	default:
	}
	if len(results) == 0 && ctx.Err() != nil {
		return
	}
	// Settle with the parent context: shutdown should still flush
	// finished work if the coordinator is reachable.
	upCtx, upCancel := context.WithTimeout(context.WithoutCancel(ctx), 10*time.Second)
	defer upCancel()
	ack, err := cl.UploadResults(upCtx, grant.LeaseID, results)
	if err != nil {
		logger.Printf("worker %s: upload lease %s: %v", id, grant.LeaseID, err)
		return
	}
	logger.Printf("worker %s: lease %s settled: %d accepted, %d requeued",
		id, grant.LeaseID, ack.Accepted, ack.Requeued)
}

// sleep waits for d or ctx, reporting whether the full wait elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
