package worker

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/wmm/client"
)

// e2eSpec is the run used by the distributed tests: two experiments so
// the batch can split across workers, small enough to stay fast.
var e2eSpec = client.RunSpec{
	Experiments: []string{"fig4", "txt3"},
	Short:       true,
	Samples:     2,
	Seed:        3,
	Parallel:    2,
}

// newCoordinator builds a wmmd-equivalent server.  With dispatch set,
// runs shard onto the job queue; LocalSlots -1 makes it a pure
// coordinator that depends entirely on leased workers.
func newCoordinator(t *testing.T, dispatch *engine.DispatchOptions) *httptest.Server {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	api := engine.NewServer(eng, engine.ServerOptions{Parallel: 2, Dispatch: dispatch})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		if err := api.Shutdown(ctx); err != nil {
			t.Errorf("coordinator shutdown: %v", err)
		}
	})
	ts := httptest.NewServer(api.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// startWorker runs an in-process worker loop (its own engine pool, its
// own API client — exactly what cmd/wmmworker wires up) until the test
// ends.
func startWorker(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	eng := engine.New(engine.Options{Workers: 2})
	t.Cleanup(eng.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		Run(ctx, Config{
			Coordinator: ts.URL,
			ID:          id,
			Poll:        20 * time.Millisecond,
			Engine:      eng,
		})
	}()
	// Stop the loop before its engine closes (cleanups run LIFO).
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(time.Minute):
			t.Errorf("worker %s did not stop", id)
		}
	})
}

func runToDone(t *testing.T, ts *httptest.Server, spec client.RunSpec, deadline time.Duration) string {
	t.Helper()
	cl := client.New(ts.URL)
	sub, err := cl.SubmitRun(context.Background(), spec)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	st, err := cl.WaitRun(ctx, sub.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatalf("wait %s: %v", sub.ID, err)
	}
	if st.State != client.StateDone {
		t.Fatalf("run %s ended %s (err %q)", sub.ID, st.State, st.Error)
	}
	return sub.ID
}

func canonical(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	raw, err := client.New(ts.URL).CanonicalRun(context.Background(), id)
	if err != nil {
		t.Fatalf("canonical %s: %v", id, err)
	}
	return raw
}

// metricValue scrapes one un-labelled or exactly-labelled series from
// the coordinator's /metrics exposition.
func metricValue(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			fmt.Sscanf(line[len(series)+1:], "%f", &v)
			return v
		}
	}
	return 0
}

// TestDistributedCanonicalIdentity is the tentpole's end-to-end
// acceptance test: a run sharded across two worker processes attached
// to a coordinator with no local execution produces canonical JSON
// byte-identical to the same spec run on a plain local server.
func TestDistributedCanonicalIdentity(t *testing.T) {
	// Baseline: the original in-process path, no dispatcher at all.
	tsLocal := newCoordinator(t, nil)
	want := canonical(t, tsLocal, runToDone(t, tsLocal, e2eSpec, 2*time.Minute))

	// Distributed: coordinator with zero local slots + two workers, each
	// with its own engine — every experiment executes remotely.
	tsDist := newCoordinator(t, &engine.DispatchOptions{LocalSlots: -1, MaxBatch: 1})
	startWorker(t, tsDist, "w1")
	startWorker(t, tsDist, "w2")
	id := runToDone(t, tsDist, e2eSpec, 2*time.Minute)
	got := canonical(t, tsDist, id)

	if !bytes.Equal(got, want) {
		t.Errorf("distributed run diverged from local run:\n--- local ---\n%s\n--- distributed ---\n%s", want, got)
	}
	if remote := metricValue(t, tsDist, `wmm_dispatch_jobs_completed_total{mode="remote"}`); remote != 2 {
		t.Errorf("remote job completions = %v, want 2", remote)
	}
	if leases := metricValue(t, tsDist, "wmm_dispatch_leases_granted_total"); leases < 2 {
		t.Errorf("leases granted = %v, want >= 2 (MaxBatch 1 across two jobs)", leases)
	}
}

// TestDistributedLitmusIdentity is the litmus-campaign acceptance
// test: a generated batch of 500 tests sharded across two worker
// processes — which regenerate their slices from shard descriptors
// alone — produces canonical JSON byte-identical to the same campaign
// executed in-process on a plain local server.
func TestDistributedLitmusIdentity(t *testing.T) {
	spec := client.LitmusSpec{
		Arch:      "armv8",
		GenSeed:   7,
		Count:     500,
		Trials:    2,
		Seed:      3,
		ShardSize: 50, // 10 shards
		Parallel:  4,
	}
	litmusToDone := func(ts *httptest.Server) string {
		t.Helper()
		cl := client.New(ts.URL)
		sub, err := cl.SubmitLitmus(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit litmus: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		st, err := cl.WaitLitmus(ctx, sub.ID, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", sub.ID, err)
		}
		if st.State != client.StateDone {
			t.Fatalf("campaign %s ended %s (err %q)", sub.ID, st.State, st.Error)
		}
		if st.Tests != spec.Count {
			t.Fatalf("campaign %s covered %d tests, want %d", sub.ID, st.Tests, spec.Count)
		}
		return sub.ID
	}
	canonicalLitmus := func(ts *httptest.Server, id string) []byte {
		t.Helper()
		raw, err := client.New(ts.URL).CanonicalLitmus(context.Background(), id)
		if err != nil {
			t.Fatalf("canonical litmus %s: %v", id, err)
		}
		return raw
	}

	tsLocal := newCoordinator(t, nil)
	want := canonicalLitmus(tsLocal, litmusToDone(tsLocal))

	tsDist := newCoordinator(t, &engine.DispatchOptions{LocalSlots: -1, MaxBatch: 2})
	startWorker(t, tsDist, "w1")
	startWorker(t, tsDist, "w2")
	got := canonicalLitmus(tsDist, litmusToDone(tsDist))

	if !bytes.Equal(got, want) {
		t.Errorf("distributed campaign diverged from local campaign:\n--- local ---\n%s\n--- distributed ---\n%s", want, got)
	}
	if remote := metricValue(t, tsDist, `wmm_dispatch_jobs_completed_total{mode="remote"}`); remote != 10 {
		t.Errorf("remote job completions = %v, want 10 (every shard leased out)", remote)
	}
}

// TestDistributedOptimizeIdentity is the optimizer-service acceptance
// test: a fence-strategy search whose cells (soundness gates, candidate
// measurements, sensitivity fits) are leased out to two worker
// processes — which re-derive each cell from its descriptor alone —
// assembles a canonical report byte-identical to the same spec run
// in-process on a plain local server.
func TestDistributedOptimizeIdentity(t *testing.T) {
	spec := client.OptimizeSpec{
		Platform:   "jvm",
		Arch:       "armv8",
		Strategies: []string{"jdk8-barriers", "jdk9-acqrel"},
		Samples:    3,
		FitCosts:   []int64{8, 32},
		Workload:   client.OptimizeWorkload{MaxCycles: 60_000},
		Seed:       7,
		Parallel:   2,
	}
	optimizeToDone := func(ts *httptest.Server) string {
		t.Helper()
		cl := client.New(ts.URL)
		sub, err := cl.SubmitOptimize(context.Background(), spec)
		if err != nil {
			t.Fatalf("submit optimize: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		st, err := cl.WaitOptimize(ctx, sub.ID, 50*time.Millisecond)
		if err != nil {
			t.Fatalf("wait %s: %v", sub.ID, err)
		}
		if st.State != client.StateDone {
			t.Fatalf("job %s ended %s (err %q)", sub.ID, st.State, st.Error)
		}
		if st.Best != "jdk9-acqrel" {
			t.Fatalf("job %s picked %q, want jdk9-acqrel", sub.ID, st.Best)
		}
		return sub.ID
	}
	canonicalOptimize := func(ts *httptest.Server, id string) []byte {
		t.Helper()
		raw, err := client.New(ts.URL).CanonicalOptimize(context.Background(), id)
		if err != nil {
			t.Fatalf("canonical optimize %s: %v", id, err)
		}
		return raw
	}

	tsLocal := newCoordinator(t, nil)
	want := canonicalOptimize(tsLocal, optimizeToDone(tsLocal))

	tsDist := newCoordinator(t, &engine.DispatchOptions{LocalSlots: -1, MaxBatch: 2})
	startWorker(t, tsDist, "w1")
	startWorker(t, tsDist, "w2")
	got := canonicalOptimize(tsDist, optimizeToDone(tsDist))

	if !bytes.Equal(got, want) {
		t.Errorf("distributed optimize job diverged from local:\n--- local ---\n%s\n--- distributed ---\n%s", want, got)
	}
	// 2 gates + 2 measures + 2 fits, every one leased out.
	if remote := metricValue(t, tsDist, `wmm_dispatch_jobs_completed_total{mode="remote"}`); remote != 6 {
		t.Errorf("remote job completions = %v, want 6 (every cell leased out)", remote)
	}
}

// TestLeaseExpiryRequeue kills a worker mid-batch (a zombie that leases
// jobs and never heartbeats or uploads) and verifies the coordinator
// re-queues the lost work, a healthy worker completes the run, and the
// result is still byte-identical to a local run.
func TestLeaseExpiryRequeue(t *testing.T) {
	tsLocal := newCoordinator(t, nil)
	want := canonical(t, tsLocal, runToDone(t, tsLocal, e2eSpec, 2*time.Minute))

	tsDist := newCoordinator(t, &engine.DispatchOptions{
		LocalSlots: -1,
		LeaseTTL:   300 * time.Millisecond,
		SweepEvery: 20 * time.Millisecond,
	})
	cl := client.New(tsDist.URL)

	// Submit, then let the zombie grab the whole batch and vanish —
	// exactly the on-wire behaviour of a worker killed mid-execution.
	sub, err := cl.SubmitRun(context.Background(), e2eSpec)
	if err != nil {
		t.Fatal(err)
	}
	var zombieJobs int
	deadline := time.Now().Add(30 * time.Second)
	for zombieJobs == 0 {
		grant, err := cl.Lease(context.Background(), "zombie", 4)
		if err != nil {
			t.Fatalf("zombie lease: %v", err)
		}
		zombieJobs = len(grant.Jobs)
		if zombieJobs == 0 {
			if time.Now().After(deadline) {
				t.Fatal("queue never offered the zombie any jobs")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The lease must expire and its jobs re-queue.
	deadline = time.Now().Add(30 * time.Second)
	for metricValue(t, tsDist, "wmm_dispatch_requeues_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("zombie's lease never expired into a requeue")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A healthy worker picks up the re-queued jobs and the run completes
	// with byte-identical results — the duplicate execution is invisible.
	startWorker(t, tsDist, "healthy")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := cl.WaitRun(ctx, sub.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone {
		t.Fatalf("run after lost lease ended %s (err %q)", st.State, st.Error)
	}
	got := canonical(t, tsDist, sub.ID)
	if !bytes.Equal(got, want) {
		t.Errorf("run with lost lease diverged from local run:\n--- local ---\n%s\n--- relocated ---\n%s", want, got)
	}
	if expired := metricValue(t, tsDist, "wmm_dispatch_leases_expired_total"); expired < 1 {
		t.Errorf("leases expired = %v, want >= 1", expired)
	}
	if requeued := metricValue(t, tsDist, "wmm_dispatch_requeues_total"); requeued < float64(zombieJobs) {
		t.Errorf("requeues = %v, want >= %d (the zombie's batch)", requeued, zombieJobs)
	}
}

// TestWorkerLateUploadDropped verifies the finish-once guard from the
// worker's side of the wire: an upload for a lease the coordinator
// already expired answers 410 lease_gone, and the run's results are
// unaffected.
func TestWorkerLateUploadDropped(t *testing.T) {
	tsDist := newCoordinator(t, &engine.DispatchOptions{
		LocalSlots: -1,
		LeaseTTL:   100 * time.Millisecond,
		SweepEvery: 10 * time.Millisecond,
	})
	cl := client.New(tsDist.URL)
	sub, err := cl.SubmitRun(context.Background(), e2eSpec)
	if err != nil {
		t.Fatal(err)
	}

	var grant client.LeaseGrant
	deadline := time.Now().Add(30 * time.Second)
	for len(grant.Jobs) == 0 {
		if grant, err = cl.Lease(context.Background(), "slow", 4); err != nil {
			t.Fatal(err)
		}
		if len(grant.Jobs) == 0 {
			if time.Now().After(deadline) {
				t.Fatal("queue never offered jobs")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Outlive the TTL without heartbeating, then try to settle.
	deadline = time.Now().Add(30 * time.Second)
	for metricValue(t, tsDist, "wmm_dispatch_leases_expired_total") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, err = cl.UploadResults(context.Background(), grant.LeaseID,
		[]client.JobResult{{RunID: grant.Jobs[0].RunID, Experiment: grant.Jobs[0].Experiment, Result: []byte(`{}`)}})
	var apiErr *client.Error
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGone || apiErr.Code != "lease_gone" {
		t.Fatalf("late upload: %v, want 410 lease_gone", err)
	}

	// The heartbeat path reports the same terminal condition.
	if _, err := cl.Heartbeat(context.Background(), grant.LeaseID); err == nil {
		t.Error("heartbeat on expired lease succeeded")
	}

	// The run still completes once a healthy worker appears.
	startWorker(t, tsDist, "healthy")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, err := cl.WaitRun(ctx, sub.ID, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone {
		t.Fatalf("run ended %s (err %q)", st.State, st.Error)
	}
}
