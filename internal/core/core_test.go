package core_test

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fit"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
	"repro/internal/workload/linuxbench"
)

var scanSizes = []int64{1, 16, 64, 256}

func calibration(t *testing.T, prof *arch.Profile) core.Calibration {
	t.Helper()
	cal, err := core.Calibrate(prof, scanSizes, 1)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	return cal
}

// TestSensitivityScanRecoversSpark runs the full §3 pipeline on the spark
// stand-in and checks the fitted k lands in the calibrated neighbourhood
// of the paper's value (0.0087 on ARM), and that the scan points decrease
// with cost size.
func TestSensitivityScanRecoversSpark(t *testing.T) {
	prof := arch.ARMv8()
	res, err := core.SensitivityScan(core.ScanConfig{
		Bench:     javabench.Spark(),
		Env:       workload.DefaultEnv(prof),
		CostPaths: []arch.PathID{jvm.PathAnyBarrier},
		AllPaths:  []arch.PathID{jvm.PathAnyBarrier},
		Sizes:     scanSizes,
		Samples:   3,
		Seed:      3,
		Cal:       calibration(t, prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sens.K < 0.004 || res.Sens.K > 0.018 {
		t.Errorf("spark k = %v, want near the paper's 0.0087", res.Sens.K)
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].P > res.Points[i-1].P+0.05 {
			t.Errorf("relative performance rose with cost: %v then %v",
				res.Points[i-1].P, res.Points[i].P)
		}
	}
	t.Logf("spark scan: %v", res.Sens)
}

// TestScanRequiresCalibration checks the error path.
func TestScanRequiresCalibration(t *testing.T) {
	_, err := core.SensitivityScan(core.ScanConfig{
		Bench: javabench.Spark(),
		Env:   workload.DefaultEnv(arch.ARMv8()),
	})
	if err == nil {
		t.Fatal("expected missing-calibration error")
	}
}

// TestFixedProbeDirection checks a probe into a hot macro slows netperf
// far more than one into a cold macro.
func TestFixedProbeDirection(t *testing.T) {
	prof := arch.ARMv8()
	env := workload.DefaultEnv(prof)
	bench := linuxbench.NetperfUDP()
	hot, err := core.FixedProbe(bench, env, kernel.PathReadOnce, kernel.Paths, 1024, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := core.FixedProbe(bench, env, kernel.PathWMB, kernel.Paths, 1024, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Rel.Ratio >= cold.Rel.Ratio {
		t.Errorf("read_once probe (%.4f) should hurt more than wmb probe (%.4f)",
			hot.Rel.Ratio, cold.Rel.Ratio)
	}
}

// TestSurveyAggregation checks SumByPath/SumByBench arithmetic.
func TestSurveyAggregation(t *testing.T) {
	rs := []core.ProbeResult{
		{Bench: "a", Path: 1, Rel: stats.Comparative{Ratio: 0.9}},
		{Bench: "a", Path: 2, Rel: stats.Comparative{Ratio: 1.0}},
		{Bench: "b", Path: 1, Rel: stats.Comparative{Ratio: 0.8}},
		{Bench: "b", Path: 2, Rel: stats.Comparative{Ratio: 0.95}},
	}
	byPath := core.SumByPath(rs)
	if math.Abs(byPath[1]-1.7) > 1e-9 || math.Abs(byPath[2]-1.95) > 1e-9 {
		t.Errorf("SumByPath = %v", byPath)
	}
	byBench := core.SumByBench(rs)
	if math.Abs(byBench["a"]-1.9) > 1e-9 || math.Abs(byBench["b"]-1.75) > 1e-9 {
		t.Errorf("SumByBench = %v", byBench)
	}
}

// TestCompareStrategiesDetectsHeavySS checks the TXT2 lever: lowering
// StoreStore to the full barrier must cost performance on POWER (the paper
// measures a 12.5% drop on spark).
func TestCompareStrategiesDetectsHeavySS(t *testing.T) {
	prof := arch.POWER7()
	base := workload.DefaultEnv(prof)
	test := base
	st := test.JVMStrategy
	st.HeavyStoreStore = true
	test.JVMStrategy = st
	rel, err := core.CompareStrategies(javabench.Spark(), base, test,
		[]arch.PathID{jvm.PathAnyBarrier}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Ratio >= 1.0 {
		t.Errorf("lwsync→hwsync StoreStore should slow spark on POWER, got %v", rel)
	}
	t.Logf("POWER heavy StoreStore: %v", rel)
}

// TestCostOfChange checks the equation-2 bridge with the paper's §4.2.1
// numbers.
func TestCostOfChange(t *testing.T) {
	a := core.CostOfChange(
		fit.Sensitivity{K: 0.01332662},
		stats.Comparative{Ratio: 0.87530})
	if math.Abs(a-11.7) > 0.2 {
		t.Errorf("cost of change = %.2f ns, paper computes ~11.7 ns", a)
	}
}

// TestClassify checks the stability classes.
func TestClassify(t *testing.T) {
	if got := core.Classify(fit.Sensitivity{K: 0.005, StdErr: 0.0001}); got != core.Stable {
		t.Errorf("stable case classified %v", got)
	}
	if got := core.Classify(fit.Sensitivity{K: 0.0001, StdErr: 0.000001}); got != core.Insensitive {
		t.Errorf("insensitive case classified %v", got)
	}
	if got := core.Classify(fit.Sensitivity{K: 0.005, StdErr: 0.002}); got != core.Unstable {
		t.Errorf("unstable case classified %v", got)
	}
}
