// Package core implements the paper's methodology (§3): treating each
// benchmark as a black box run across fencing strategies of the underlying
// platform, and
//
//  1. establishing the significance of a fencing choice for a platform by
//     measuring sensitivity to changes across a number of benchmarks, and
//  2. establishing the sensitivity of a particular benchmark to the
//     platform's fencing strategy by running it across a variety of
//     choices.
//
// The two instruments are the fixed-size cost-function probe (Figures 7-8:
// one large cost function per code path, relative performance recorded) and
// the variable-size sensitivity scan (Figures 1, 5, 6, 9: sweep the cost
// size, fit p = 1/((1-k)+ka) by nonlinear least squares).  Given a fitted
// k, an actual strategy change's relative performance p converts to a
// per-invocation cost increase a via equation (2) — the bridge between
// in-vitro and in-vivo measurement that §4.3.1 exploits.
package core

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/costfn"
	"repro/internal/fit"
	"repro/internal/stats"
	"repro/internal/workload"
)

// checkSummary rejects a measurement whose geometric mean is poisoned
// (stats.GeoMean returns NaN when any sample is non-positive).  Such a
// summary would silently corrupt the normalised performance p and the fit
// layer, so the instruments fail loudly instead.
func checkSummary(label string, s stats.Summary) error {
	if math.IsNaN(s.GeoMean) {
		return fmt.Errorf("core: %s has non-positive samples (geometric mean undefined)", label)
	}
	return nil
}

// DefaultSizes is the cost-function size sweep used by the scans, in loop
// iterations (the paper sweeps 2^0..2^8 ns; loop iterations are converted
// to nanoseconds through the Figure 4 calibration curve).
var DefaultSizes = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Calibration converts cost-function loop counts to nanoseconds for a
// profile.  Build one per profile with Calibrate and share it across scans.
type Calibration struct {
	Variant costfn.Variant
	Curve   []costfn.CalPoint
}

// Calibrate runs the Figure 4 measurement for the profile's default
// cost-function variant over the given sizes.
func Calibrate(prof *arch.Profile, sizes []int64, seed int64) (Calibration, error) {
	v := costfn.ForProfile(prof)
	curve, err := costfn.Calibrate(prof, v, sizes, seed)
	if err != nil {
		return Calibration{}, err
	}
	return Calibration{Variant: v, Curve: curve}, nil
}

// Ns maps a loop count to nanoseconds.
func (c Calibration) Ns(iterations int64) float64 {
	return costfn.NsForIterations(c.Curve, iterations)
}

// Measurer runs one measurement — n samples of bench under env — and
// summarises them.  It is the single point through which the
// methodology's instruments obtain performance numbers: a nil Measurer
// means direct in-process execution via workload.Measure, while an
// execution engine substitutes a pooled, cancellable implementation
// without the instruments knowing.
type Measurer func(b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error)

// measure dispatches through the Measurer, defaulting to direct
// execution.
func (m Measurer) measure(b *workload.Benchmark, env workload.Env, n int, seed int64) (stats.Summary, error) {
	if m == nil {
		return workload.Measure(b, env, n, seed)
	}
	return m(b, env, n, seed)
}

// Session binds the methodology's instruments to a measurement backend.
// The zero Session measures directly in-process; Session{Meas: ...}
// routes every sample through the given backend (e.g. an engine worker
// pool).  Results are bit-identical either way because sample seeds are
// derived positionally (workload.SampleSeed).
type Session struct {
	Meas Measurer
}

// ScanConfig describes a sensitivity scan.
type ScanConfig struct {
	Bench *workload.Benchmark
	Env   workload.Env
	// CostPaths receive the variable cost function; AllPaths is the full
	// instrumented set (nop-padded in the base case and wherever the
	// cost function is absent), preserving binary-size invariance.
	CostPaths []arch.PathID
	AllPaths  []arch.PathID
	Sizes     []int64 // loop iterations; DefaultSizes if nil
	Samples   int     // samples per point; 6 if zero (paper §4.1)
	Seed      int64
	Cal       Calibration
	// Meas routes the scan's measurements; direct execution if nil.
	Meas Measurer
}

// ScanPoint is one measured point of a scan.
type ScanPoint struct {
	Iterations int64
	Ns         float64
	Perf       stats.Summary
	P          float64 // relative performance vs the base case
	PLo, PHi   float64 // compounded comparative interval
}

// ScanResult is a completed sensitivity scan with its fitted model.
type ScanResult struct {
	Bench  string
	Base   stats.Summary
	Points []ScanPoint
	Sens   fit.Sensitivity
}

// SensitivityScan performs the §3 procedure: measure the nop-padded base
// case, sweep the cost-function size over the chosen code paths, and fit
// the sensitivity model to the relative performances.
func SensitivityScan(cfg ScanConfig) (ScanResult, error) {
	return Session{}.SensitivityScan(cfg)
}

// SensitivityScan runs the §3 scan through the session's backend (the
// config's own Meas, if set, takes precedence).
func (s Session) SensitivityScan(cfg ScanConfig) (ScanResult, error) {
	if cfg.Meas == nil {
		cfg.Meas = s.Meas
	}
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = DefaultSizes
	}
	samples := cfg.Samples
	if samples <= 0 {
		samples = 6
	}
	if len(cfg.Cal.Curve) == 0 {
		return ScanResult{}, fmt.Errorf("core: scan of %s missing calibration", cfg.Bench.Name)
	}
	base, err := cfg.Meas.measure(cfg.Bench, cfg.Env.NopBase(cfg.AllPaths), samples, cfg.Seed)
	if err != nil {
		return ScanResult{}, fmt.Errorf("core: base case of %s: %w", cfg.Bench.Name, err)
	}
	if err := checkSummary(fmt.Sprintf("base case of %s", cfg.Bench.Name), base); err != nil {
		return ScanResult{}, err
	}
	res := ScanResult{Bench: cfg.Bench.Name, Base: base}
	pts := make([]fit.Point, 0, len(sizes))
	for _, n := range sizes {
		env := cfg.Env.WithCost(cfg.CostPaths, cfg.AllPaths, n)
		sum, err := cfg.Meas.measure(cfg.Bench, env, samples, cfg.Seed)
		if err != nil {
			return ScanResult{}, fmt.Errorf("core: %s at size %d: %w", cfg.Bench.Name, n, err)
		}
		if err := checkSummary(fmt.Sprintf("%s at size %d", cfg.Bench.Name, n), sum); err != nil {
			return ScanResult{}, err
		}
		cmp := stats.Compare(sum, base)
		sp := ScanPoint{
			Iterations: n,
			Ns:         cfg.Cal.Ns(n),
			Perf:       sum,
			P:          cmp.Ratio,
			PLo:        cmp.Lo,
			PHi:        cmp.Hi,
		}
		res.Points = append(res.Points, sp)
		pts = append(pts, fit.Point{A: sp.Ns, P: sp.P})
	}
	sens, err := fit.FitSensitivity(pts)
	if err != nil {
		return ScanResult{}, fmt.Errorf("core: fit for %s: %w", cfg.Bench.Name, err)
	}
	res.Sens = sens
	return res, nil
}

// ProbeResult is one fixed-size probe measurement.
type ProbeResult struct {
	Bench string
	Path  arch.PathID
	Rel   stats.Comparative
}

// FixedProbe injects a single large cost function (the paper uses 1024
// loop iterations for the kernel survey) into one code path and returns
// the relative performance against the nop base case.
func FixedProbe(bench *workload.Benchmark, env workload.Env, path arch.PathID,
	allPaths []arch.PathID, size int64, samples int, seed int64) (ProbeResult, error) {
	return Session{}.FixedProbe(bench, env, path, allPaths, size, samples, seed)
}

// FixedProbe runs the fixed-size probe through the session's backend.
func (s Session) FixedProbe(bench *workload.Benchmark, env workload.Env, path arch.PathID,
	allPaths []arch.PathID, size int64, samples int, seed int64) (ProbeResult, error) {
	if samples <= 0 {
		samples = 6
	}
	base, err := s.Meas.measure(bench, env.NopBase(allPaths), samples, seed)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("core: probe base of %s: %w", bench.Name, err)
	}
	test, err := s.Meas.measure(bench, env.WithCost([]arch.PathID{path}, allPaths, size), samples, seed)
	if err != nil {
		return ProbeResult{}, fmt.Errorf("core: probe of %s path %d: %w", bench.Name, path, err)
	}
	if err := checkSummary(fmt.Sprintf("probe of %s", bench.Name), base); err != nil {
		return ProbeResult{}, err
	}
	if err := checkSummary(fmt.Sprintf("probe of %s path %d", bench.Name, path), test); err != nil {
		return ProbeResult{}, err
	}
	return ProbeResult{Bench: bench.Name, Path: path, Rel: stats.Compare(test, base)}, nil
}

// Survey runs the fixed-probe measurement for every (benchmark, path)
// pair: the Figure 7/8 dataset (14 macros x 11 benchmarks = 154 points for
// the kernel).  The nop base case is measured once per benchmark and
// shared across its probes.
func Survey(benches []*workload.Benchmark, env workload.Env, paths []arch.PathID,
	size int64, samples int, seed int64) ([]ProbeResult, error) {
	return Session{}.Survey(benches, env, paths, size, samples, seed)
}

// Survey runs the fixed-probe survey through the session's backend.
func (s Session) Survey(benches []*workload.Benchmark, env workload.Env, paths []arch.PathID,
	size int64, samples int, seed int64) ([]ProbeResult, error) {
	if samples <= 0 {
		samples = 6
	}
	out := make([]ProbeResult, 0, len(benches)*len(paths))
	for _, b := range benches {
		base, err := s.Meas.measure(b, env.NopBase(paths), samples, seed)
		if err != nil {
			return nil, fmt.Errorf("core: survey base of %s: %w", b.Name, err)
		}
		if err := checkSummary(fmt.Sprintf("survey base of %s", b.Name), base); err != nil {
			return nil, err
		}
		for _, p := range paths {
			test, err := s.Meas.measure(b, env.WithCost([]arch.PathID{p}, paths, size), samples, seed)
			if err != nil {
				return nil, fmt.Errorf("core: survey of %s path %d: %w", b.Name, p, err)
			}
			if err := checkSummary(fmt.Sprintf("survey of %s path %d", b.Name, p), test); err != nil {
				return nil, err
			}
			out = append(out, ProbeResult{Bench: b.Name, Path: p, Rel: stats.Compare(test, base)})
		}
	}
	return out, nil
}

// SumByPath aggregates a survey across benchmarks for each path (Figure 7:
// lower sums mean bigger impact).
func SumByPath(rs []ProbeResult) map[arch.PathID]float64 {
	m := map[arch.PathID]float64{}
	for _, r := range rs {
		m[r.Path] += r.Rel.Ratio
	}
	return m
}

// SumByBench aggregates a survey across paths for each benchmark
// (Figure 8).
func SumByBench(rs []ProbeResult) map[string]float64 {
	m := map[string]float64{}
	for _, r := range rs {
		m[r.Bench] += r.Rel.Ratio
	}
	return m
}

// CompareStrategies measures the relative performance of a test
// environment against a base environment on one benchmark, both nop-padded
// over allPaths so binary size stays invariant.
func CompareStrategies(bench *workload.Benchmark, envBase, envTest workload.Env,
	allPaths []arch.PathID, samples int, seed int64) (stats.Comparative, error) {
	return Session{}.CompareStrategies(bench, envBase, envTest, allPaths, samples, seed)
}

// CompareStrategies runs the strategy comparison through the session's
// backend.
func (s Session) CompareStrategies(bench *workload.Benchmark, envBase, envTest workload.Env,
	allPaths []arch.PathID, samples int, seed int64) (stats.Comparative, error) {
	if samples <= 0 {
		samples = 6
	}
	base, err := s.Meas.measure(bench, envBase.NopBase(allPaths), samples, seed)
	if err != nil {
		return stats.Comparative{}, fmt.Errorf("core: strategy base of %s: %w", bench.Name, err)
	}
	test, err := s.Meas.measure(bench, envTest.NopBase(allPaths), samples, seed)
	if err != nil {
		return stats.Comparative{}, fmt.Errorf("core: strategy test of %s: %w", bench.Name, err)
	}
	if err := checkSummary(fmt.Sprintf("strategy base of %s", bench.Name), base); err != nil {
		return stats.Comparative{}, err
	}
	if err := checkSummary(fmt.Sprintf("strategy test of %s", bench.Name), test); err != nil {
		return stats.Comparative{}, err
	}
	return stats.Compare(test, base), nil
}

// CostOfChange converts a measured strategy-change performance into the
// per-invocation cost increase implied by the benchmark's fitted
// sensitivity (equation 2).  This is how §4.2.1 derives the 1.8 ns / 11.7
// ns StoreStore figures and §4.3.1 its rbd strategy cost table.
func CostOfChange(sens fit.Sensitivity, rel stats.Comparative) float64 {
	return fit.CostIncrease(sens.K, rel.Ratio)
}

// Stability classifies a scan the way §4.2.1 discusses benchmarks: a
// benchmark is a reasonable instrument for a code path when its fitted k
// is not too small and the fit error is bounded.
type Stability uint8

const (
	// Stable: usable for evaluating changes in the code path.
	Stable Stability = iota
	// Insensitive: k too small to resolve changes.
	Insensitive
	// Unstable: fit variance too high to trust.
	Unstable
)

// String names the stability class.
func (s Stability) String() string {
	switch s {
	case Stable:
		return "stable"
	case Insensitive:
		return "insensitive"
	default:
		return "unstable"
	}
}

// Classify applies the paper's informal criteria: "if k is comparatively
// low or variance is high, then the benchmark is not well suited to
// evaluating changes in the given code path".
func Classify(s fit.Sensitivity) Stability {
	switch {
	case s.K < 5e-4:
		return Insensitive
	case s.RelErr() > 0.12:
		return Unstable
	default:
		return Stable
	}
}
