// Package faultinject deterministically injects faults — panics, delays,
// and errors — at well-known boundaries of the experiment engine and the
// run store, so that tests can prove each recovery path instead of hoping
// it works.  The paper's methodology assumes hours-long unattended sweeps
// (§4.1); the only way to trust that a sweep survives a worker panic or a
// hung sample is to inject exactly that fault under -race and watch the
// system degrade gracefully.
//
// Injection is option-gated: production code paths carry a nil *Injector
// and pay one pointer comparison.  An Injector is armed with Rules that
// match an injection point plus an optional sample seed and key, so a
// fault lands on a deterministic unit of work regardless of worker
// scheduling:
//
//	inj := faultinject.New(
//	    faultinject.Rule{Point: faultinject.PointSample, Seed: workload.SampleSeed(3, 1),
//	        Times: 1, Action: faultinject.Action{Panic: true}},
//	)
//	eng := engine.New(engine.Options{Fault: inj})
//
// Every fault fired is counted (Injector.Fired, and the
// wmm_fault_injections_total metric when a registry is attached), so a
// test can assert the fault actually happened before asserting that the
// system recovered from it.
package faultinject

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Injection points.  The string value appears in error messages and the
// wmm_fault_injections_total point label.
const (
	// PointSample fires inside a worker's recovered region, immediately
	// before one simulator sample executes.  Key is the benchmark name;
	// Seed is the sample's derived seed.
	PointSample = "sample"
	// PointCalibration fires at the top of a calibration computation.
	// Key is the calibration cache key.
	PointCalibration = "calibration"
	// PointStoreAppend fires before a run-store record is appended.  Key
	// is "<runID>/<record type>".
	PointStoreAppend = "store.append"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests
// and retry policies can tell an injected fault from an organic failure.
var ErrInjected = errors.New("injected fault")

// Action is what happens when a rule fires.  Exactly one of Panic, Err
// and Delay-only should be meaningful; Delay composes with the others
// (sleep, then panic/error).
type Action struct {
	// Delay sleeps before returning (or before panicking/erroring).
	Delay time.Duration
	// Panic panics with a recognisable message.
	Panic bool
	// Err, if non-nil, is returned wrapped in ErrInjected.
	Err error
}

// Rule arms one fault.  Zero-valued match fields are wildcards.
type Rule struct {
	// Point selects the injection boundary (required).
	Point string
	// Seed, if non-zero, matches only the unit of work with this derived
	// seed (sample point).
	Seed int64
	// Key, if non-empty, matches sites whose key contains it.
	Key string
	// Times caps how often the rule fires; 0 = every match.
	Times int
	// Action is applied when the rule matches.
	Action Action
}

// Injector evaluates rules at injection points.  A nil *Injector is
// inert and free to call into.  An Injector is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules []*armedRule
	fired map[string]int

	counter *metrics.Counter
}

type armedRule struct {
	Rule
	remaining int // <0 = unlimited
}

// New returns an Injector armed with the given rules.
func New(rules ...Rule) *Injector {
	in := &Injector{fired: map[string]int{}}
	for _, r := range rules {
		ar := &armedRule{Rule: r, remaining: -1}
		if r.Times > 0 {
			ar.remaining = r.Times
		}
		in.rules = append(in.rules, ar)
	}
	return in
}

// Instrument records every fired fault into reg as
// wmm_fault_injections_total{point}.
func (in *Injector) Instrument(reg *metrics.Registry) *Injector {
	if in != nil {
		in.counter = reg.Counter("wmm_fault_injections_total",
			"Faults fired by the injection harness, by point.", "point")
	}
	return in
}

// Fire evaluates the rules for one unit of work at the given point.  It
// sleeps for a matching Delay, panics for a matching Panic, and returns
// a matching Err wrapped in ErrInjected.  A nil receiver, or no matching
// rule, returns nil without side effects.
func (in *Injector) Fire(point, key string, seed int64) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	var act *Action
	for _, r := range in.rules {
		if r.Point != point || r.remaining == 0 {
			continue
		}
		if r.Seed != 0 && r.Seed != seed {
			continue
		}
		if r.Key != "" && !strings.Contains(key, r.Key) {
			continue
		}
		if r.remaining > 0 {
			r.remaining--
		}
		in.fired[point]++
		act = &r.Action
		break
	}
	counter := in.counter
	in.mu.Unlock()
	if act == nil {
		return nil
	}
	if counter != nil {
		counter.Inc(point)
	}
	if act.Delay > 0 {
		time.Sleep(act.Delay)
	}
	if act.Panic {
		panic(fmt.Sprintf("faultinject: %s %q (seed %d)", point, key, seed))
	}
	if act.Err != nil {
		return fmt.Errorf("%s %q (seed %d): %w: %w", point, key, seed, ErrInjected, act.Err)
	}
	return nil
}

// Fired reports how many faults have fired at the given point.
func (in *Injector) Fired(point string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[point]
}
