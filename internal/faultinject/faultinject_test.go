package faultinject

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Fire(PointSample, "bench", 42); err != nil {
		t.Errorf("nil injector fired: %v", err)
	}
	if in.Fired(PointSample) != 0 {
		t.Error("nil injector counted a fault")
	}
}

func TestSeedAndKeyMatching(t *testing.T) {
	boom := errors.New("boom")
	in := New(
		Rule{Point: PointSample, Seed: 7, Action: Action{Err: boom}},
		Rule{Point: PointCalibration, Key: "ARMv8", Action: Action{Err: boom}},
	)

	if err := in.Fire(PointSample, "bench", 8); err != nil {
		t.Errorf("non-matching seed fired: %v", err)
	}
	err := in.Fire(PointSample, "bench", 7)
	if !errors.Is(err, ErrInjected) || !errors.Is(err, boom) {
		t.Errorf("matching seed: err = %v, want ErrInjected wrapping boom", err)
	}

	if err := in.Fire(PointCalibration, "POWER7|1|", 0); err != nil {
		t.Errorf("non-matching key fired: %v", err)
	}
	if err := in.Fire(PointCalibration, "ARMv8|1|1,8,", 0); !errors.Is(err, ErrInjected) {
		t.Errorf("matching key did not fire: %v", err)
	}
	if got := in.Fired(PointSample); got != 1 {
		t.Errorf("sample faults fired = %d, want 1", got)
	}
}

func TestTimesCap(t *testing.T) {
	in := New(Rule{Point: PointStoreAppend, Times: 2, Action: Action{Err: errors.New("disk")}})
	var fired int
	for i := 0; i < 5; i++ {
		if in.Fire(PointStoreAppend, "run-1/experiment", 0) != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Errorf("capped rule fired %d times, want 2", fired)
	}
}

func TestPanicAction(t *testing.T) {
	in := New(Rule{Point: PointSample, Action: Action{Panic: true}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic action did not panic")
		}
		if !strings.Contains(r.(string), "faultinject: sample") {
			t.Errorf("panic message %q not recognisable", r)
		}
	}()
	in.Fire(PointSample, "bench", 1)
}

func TestDelayAction(t *testing.T) {
	in := New(Rule{Point: PointSample, Action: Action{Delay: 30 * time.Millisecond}})
	start := time.Now()
	if err := in.Fire(PointSample, "bench", 1); err != nil {
		t.Errorf("delay-only rule returned %v", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Errorf("delay action slept %v, want >= 30ms", d)
	}
}

func TestConcurrentFiringAndMetric(t *testing.T) {
	reg := metrics.NewRegistry()
	in := New(Rule{Point: PointSample, Times: 10, Action: Action{Err: errors.New("x")}}).Instrument(reg)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 5; k++ {
				in.Fire(PointSample, "bench", int64(k))
			}
		}()
	}
	wg.Wait()
	if got := in.Fired(PointSample); got != 10 {
		t.Errorf("fired = %d, want exactly 10 under concurrency", got)
	}
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `wmm_fault_injections_total{point="sample"} 10`) {
		t.Errorf("metric exposition missing injection counter:\n%s", sb.String())
	}
}
