// Package costfn implements the paper's cost functions (§3, Figures 2–3):
// small injected instruction sequences whose execution time is stable and
// controllable, used to probe how sensitive a benchmark is to a platform
// code path.  A cost function is a spin loop of N iterations; the base case
// is padded with an equal number of nop instructions so that code size is
// invariant between the base case and the test case (§4.1).
package costfn

import (
	"fmt"

	"repro/internal/arch"
)

// Variant selects the concrete instruction sequence.
type Variant uint8

const (
	// ARM is the ARMv8 sequence of Figure 2: the loop counter register is
	// spilled to the stack around the loop because register availability
	// at an arbitrary code path is unknown.
	ARM Variant = iota
	// ARMNoStack is the ARMv8 sequence with the stack operations elided:
	// inside OpenJDK a scratch register (x9) is known to be available.
	ARMNoStack
	// POWER is the POWER sequence of Figure 3 (std/ld spill via r1).
	POWER
)

// String returns the variant name as used in Figure 4's legend.
func (v Variant) String() string {
	switch v {
	case ARM:
		return "arm"
	case ARMNoStack:
		return "arm-nostack"
	case POWER:
		return "power"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// ForProfile returns the variant a platform would use by default on the
// given profile: the spilling sequence, since register availability is
// unknown at an arbitrary code path.
func ForProfile(p *arch.Profile) Variant {
	if p.Flavor == arch.NonMCA {
		return POWER
	}
	return ARM
}

// scratch is the register used as the loop counter (x9 on ARM, r11 on
// POWER; the distinction is immaterial to the simulator).
const scratch arch.Reg = 9

// Emit appends a cost function of n loop iterations to b.  n must be
// positive.  The emitted code uses only the scratch register and (for
// spilling variants) one stack slot below SP; SP must hold a valid private
// stack address.
func Emit(b *arch.Builder, v Variant, n int64) {
	if n < 1 {
		n = 1
	}
	// The current builder position makes the loop label unique.
	loop := fmt.Sprintf("costfn_%d", b.Len())
	spill := v == ARM || v == POWER
	if spill {
		// stp x9, xzr, [sp, #-16]!  /  std r11, -8(r1)
		b.SubImm(arch.SP, arch.SP, 2)
		b.Store(scratch, arch.SP, 0)
	}
	b.MovImm(scratch, n)
	b.Label(loop)
	b.SubsImm(scratch, scratch, 1)
	b.Bne(loop)
	if spill {
		// ldp x9, xzr, [sp], #16  /  ld r11, -8(r1)
		b.Load(scratch, arch.SP, 0)
		b.AddImm(arch.SP, arch.SP, 2)
	}
}

// StaticLen returns the number of instructions Emit produces for v, which
// is independent of n (n only changes the loop count).
func StaticLen(v Variant) int {
	if v == ARMNoStack {
		return 3
	}
	return 7
}

// EmitNops appends the placeholder sequence for the base case: the same
// number of instructions as Emit would produce, all nops, keeping binary
// layout identical between base and test case.
func EmitNops(b *arch.Builder, v Variant) {
	b.Nops(StaticLen(v))
}

// Injection describes what to place at an instrumented code path: nothing,
// nop padding, or a cost function of a given size.
type Injection struct {
	Mode Mode
	// Iterations is the loop count when Mode is InjectCost.
	Iterations int64
	Variant    Variant
}

// Mode enumerates injection modes.
type Mode uint8

const (
	// InjectNothing leaves the code path untouched (the pristine build).
	InjectNothing Mode = iota
	// InjectNops emits the size-preserving placeholder (the base case).
	InjectNops
	// InjectCost emits the cost function (the test case).
	InjectCost
)

// Apply emits the injection into b.
func (inj Injection) Apply(b *arch.Builder) {
	switch inj.Mode {
	case InjectNothing:
	case InjectNops:
		EmitNops(b, inj.Variant)
	case InjectCost:
		Emit(b, inj.Variant, inj.Iterations)
	}
}

// Nothing returns the no-op injection.
func Nothing() Injection { return Injection{Mode: InjectNothing} }

// Nops returns the nop-padding injection for v.
func Nops(v Variant) Injection { return Injection{Mode: InjectNops, Variant: v} }

// Cost returns a cost-function injection of n iterations for v.
func Cost(v Variant, n int64) Injection {
	return Injection{Mode: InjectCost, Iterations: n, Variant: v}
}
