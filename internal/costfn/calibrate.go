package costfn

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TimeSequence measures the marginal execution time, in simulated
// nanoseconds, of an instruction sequence emitted by emit, by comparing a
// timing loop containing the sequence against the same loop containing an
// equal number of nops.  This is the paper's in-vitro microbenchmark: it
// measures the sequence in a sterile context (hot loop, empty store buffer,
// warm cache), which is exactly why its results can diverge from in-vivo
// cost estimates (§4.4).
//
// The same facility times barrier instructions for EXPERIMENTS.md TXT3.
func TimeSequence(prof *arch.Profile, emit func(*arch.Builder), seed int64) (float64, error) {
	return NewTimer(prof).TimeSequence(emit, seed)
}

// Timer runs timing loops for one profile on a single reused 1-core
// machine (seed restored per run via sim.Machine.Reset), so sweeps like
// Calibrate avoid rebuilding the simulator for every measurement.  Results
// are bit-identical to fresh construction.  Not safe for concurrent use.
type Timer struct {
	prof *arch.Profile
	m    *sim.Machine
}

// NewTimer returns a Timer for the profile.  The machine is built lazily
// on first use.
func NewTimer(prof *arch.Profile) *Timer { return &Timer{prof: prof} }

// machine returns the reused machine reset to seed.
func (t *Timer) machine(seed int64) (*sim.Machine, error) {
	if t.m == nil {
		m, err := sim.New(t.prof, sim.Config{Cores: 1, MemWords: 4096, Seed: seed})
		if err != nil {
			return nil, err
		}
		t.m = m
		return m, nil
	}
	t.m.Reset(seed)
	return t.m, nil
}

// TimeSequence is the package-level TimeSequence on the Timer's reused
// machine.
func (t *Timer) TimeSequence(emit func(*arch.Builder), seed int64) (float64, error) {
	const iters = 600

	build := func(body func(*arch.Builder)) (arch.Program, int, error) {
		b := arch.NewBuilder()
		b.MovImm(20, iters)
		b.Label("timing")
		start := b.Len()
		body(b)
		n := b.Len() - start
		b.SubsImm(20, 20, 1)
		b.Bne("timing")
		b.Halt()
		p, err := b.Build()
		if err != nil {
			return arch.Program{}, 0, fmt.Errorf("costfn: building timing loop: %w", err)
		}
		return p, n, nil
	}

	run := func(p arch.Program) (int64, error) {
		m, err := t.machine(seed)
		if err != nil {
			return 0, err
		}
		m.SetReg(0, arch.SP, 2048) // private stack for spilling sequences
		if err := m.LoadProgram(0, p); err != nil {
			return 0, err
		}
		res, err := m.Run(100_000_000)
		if err != nil {
			return 0, err
		}
		if !res.AllHalted {
			return 0, fmt.Errorf("costfn: timing loop did not finish")
		}
		return res.Cycles, nil
	}

	withSeq, n, err := build(emit)
	if err != nil {
		return 0, err
	}
	withNops, _, err := build(func(b *arch.Builder) { b.Nops(n) })
	if err != nil {
		return 0, err
	}

	seqCycles, err := run(withSeq)
	if err != nil {
		return 0, err
	}
	nopCycles, err := run(withNops)
	if err != nil {
		return 0, err
	}
	perIter := float64(seqCycles-nopCycles) / iters
	if perIter < 0 {
		perIter = 0
	}
	return perIter / t.prof.FreqGHz, nil
}

// CalPoint is one point of the Figure 4 calibration curve.
type CalPoint struct {
	Iterations int64
	Ns         float64
}

// Calibrate reproduces Figure 4: the time taken to execute the cost
// function for each loop count in sizes, averaged over a handful of seeds
// to smooth pipeline jitter.
func Calibrate(prof *arch.Profile, v Variant, sizes []int64, seed int64) ([]CalPoint, error) {
	const seeds = 3
	t := NewTimer(prof)
	pts := make([]CalPoint, 0, len(sizes))
	for _, n := range sizes {
		n := n
		var sum float64
		for s := int64(0); s < seeds; s++ {
			ns, err := t.TimeSequence(func(b *arch.Builder) { Emit(b, v, n) }, seed+s*101)
			if err != nil {
				return nil, fmt.Errorf("calibrate %s n=%d: %w", v, n, err)
			}
			sum += ns
		}
		pts = append(pts, CalPoint{Iterations: n, Ns: sum / seeds})
	}
	return pts, nil
}

// NsForIterations interpolates a calibration curve to map a loop count to
// nanoseconds.  Counts outside the calibrated range are extrapolated
// linearly from the nearest segment.
func NsForIterations(curve []CalPoint, n int64) float64 {
	if len(curve) == 0 {
		return 0
	}
	if n <= curve[0].Iterations {
		return curve[0].Ns
	}
	for i := 1; i < len(curve); i++ {
		if n <= curve[i].Iterations {
			lo, hi := curve[i-1], curve[i]
			f := float64(n-lo.Iterations) / float64(hi.Iterations-lo.Iterations)
			return lo.Ns + f*(hi.Ns-lo.Ns)
		}
	}
	// Extrapolate from the final segment.
	lo, hi := curve[len(curve)-2], curve[len(curve)-1]
	slope := (hi.Ns - lo.Ns) / float64(hi.Iterations-lo.Iterations)
	return hi.Ns + slope*float64(n-hi.Iterations)
}

// IterationsForNs inverts a calibration curve: the loop count whose
// execution time is closest to ns.
func IterationsForNs(curve []CalPoint, ns float64) int64 {
	if len(curve) == 0 {
		return 1
	}
	best, bestDiff := curve[0].Iterations, absf(curve[0].Ns-ns)
	for _, p := range curve[1:] {
		if d := absf(p.Ns - ns); d < bestDiff {
			best, bestDiff = p.Iterations, d
		}
	}
	return best
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
