package costfn

import (
	"testing"

	"repro/internal/arch"
)

// TestTimerReuseDeterminism pins machine reuse at the calibration layer: a
// Timer that recycles one machine across measurements must produce exactly
// the numbers fresh per-call construction does, for every cost-function
// variant (ARM with stack traffic, ARM-nostack, POWER) and both storage
// models, across interleaved sequences and seeds.
func TestTimerReuseDeterminism(t *testing.T) {
	cases := []struct {
		prof *arch.Profile
		v    Variant
	}{
		{arch.ARMv8(), ARM},
		{arch.ARMv8(), ARMNoStack},
		{arch.POWER7(), POWER},
	}
	for _, tc := range cases {
		t.Run(tc.prof.Name+"/"+tc.v.String(), func(t *testing.T) {
			timer := NewTimer(tc.prof)
			// Interleave sizes and seeds so the reused machine sees
			// different programs and RNG states between measurements.
			for _, n := range []int64{1, 64, 4, 256} {
				for seed := int64(1); seed <= 3; seed++ {
					emit := func(b *arch.Builder) { Emit(b, tc.v, n) }
					fresh, err := NewTimer(tc.prof).TimeSequence(emit, seed)
					if err != nil {
						t.Fatalf("fresh n=%d seed=%d: %v", n, seed, err)
					}
					reused, err := timer.TimeSequence(emit, seed)
					if err != nil {
						t.Fatalf("reused n=%d seed=%d: %v", n, seed, err)
					}
					if fresh != reused {
						t.Errorf("n=%d seed=%d: reused timer %v != fresh %v", n, seed, reused, fresh)
					}
				}
			}
		})
	}
}

// TestCalibrateMatchesSeedBehaviour pins that the Timer-based Calibrate
// produces the same curve as calling the package-level TimeSequence for
// every point, i.e. machine reuse did not change calibration output.
func TestCalibrateMatchesSeedBehaviour(t *testing.T) {
	prof := arch.ARMv8()
	v := ForProfile(prof)
	sizes := []int64{1, 16, 128}
	curve, err := Calibrate(prof, v, sizes, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range sizes {
		var sum float64
		for s := int64(0); s < 3; s++ {
			n := n
			ns, err := TimeSequence(prof, func(b *arch.Builder) { Emit(b, v, n) }, 7+s*101)
			if err != nil {
				t.Fatal(err)
			}
			sum += ns
		}
		if want := sum / 3; curve[i].Ns != want {
			t.Errorf("size %d: Calibrate %v != per-call %v", n, curve[i].Ns, want)
		}
	}
}
