package costfn

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

// Property: NsForIterations is monotone nondecreasing over any monotone
// calibration curve, and inverts consistently with IterationsForNs.
func TestInterpolationMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Build a random monotone curve.
		n := 3 + rng.Intn(8)
		curve := make([]CalPoint, n)
		it, ns := int64(1), 0.5+rng.Float64()
		for i := 0; i < n; i++ {
			curve[i] = CalPoint{Iterations: it, Ns: ns}
			it += 1 + int64(rng.Intn(100))
			ns += rng.Float64() * 50
		}
		// Monotone queries.
		var qs []int64
		for i := 0; i < 16; i++ {
			qs = append(qs, 1+int64(rng.Intn(int(it))))
		}
		sort.Slice(qs, func(i, j int) bool { return qs[i] < qs[j] })
		prev := -1.0
		for _, q := range qs {
			v := NsForIterations(curve, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		// Round trip: the loop count closest to a curve point's ns is
		// that point's count.
		for _, p := range curve {
			if IterationsForNs(curve, p.Ns) != p.Iterations {
				// Ties can legitimately pick an equal-ns neighbour.
				got := NsForIterations(curve, IterationsForNs(curve, p.Ns))
				if got != p.Ns {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the injection modes preserve instruction-count invariance for
// every variant and iteration count.
func TestInjectionSizeProperty(t *testing.T) {
	f := func(rawV uint8, rawN uint16) bool {
		v := Variant(rawV % 3)
		n := int64(rawN)
		ia := Cost(v, n)
		ib := Nops(v)
		ba := lenOf(ia)
		bb := lenOf(ib)
		return ba == bb && lenOf(Nothing()) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func lenOf(inj Injection) int {
	b := arch.NewBuilder()
	inj.Apply(b)
	return b.Len()
}
