package costfn

import (
	"math"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
)

// TestStaticLenMatchesEmit checks that the nop placeholder has exactly the
// same instruction count as the cost function (binary-size invariance).
func TestStaticLenMatchesEmit(t *testing.T) {
	for _, v := range []Variant{ARM, ARMNoStack, POWER} {
		for _, n := range []int64{1, 7, 1024} {
			b := arch.NewBuilder()
			Emit(b, v, n)
			if got := b.Len(); got != StaticLen(v) {
				t.Errorf("%s n=%d: emitted %d instructions, StaticLen says %d", v, n, got, StaticLen(v))
			}
			nb := arch.NewBuilder()
			EmitNops(nb, v)
			if nb.Len() != b.Len() {
				t.Errorf("%s: nop placeholder %d != cost function %d", v, nb.Len(), b.Len())
			}
		}
	}
}

// TestEmitExecutes checks the emitted loop actually runs n iterations and
// preserves the stack pointer.
func TestEmitExecutes(t *testing.T) {
	for _, v := range []Variant{ARM, ARMNoStack, POWER} {
		prof := arch.ARMv8()
		if v == POWER {
			prof = arch.POWER7()
		}
		b := arch.NewBuilder()
		Emit(b, v, 64)
		b.Mov(5, arch.SP) // observe SP after
		b.Store(5, 6, 16) // record it
		b.Halt()
		m, err := sim.New(prof, sim.Config{Cores: 1, MemWords: 1024, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		m.SetReg(0, arch.SP, 512)
		if err := m.LoadProgram(0, b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(1_000_000)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if !res.AllHalted {
			t.Fatalf("%s: did not halt", v)
		}
		if got := m.ReadMem(16); got != 512 {
			t.Errorf("%s: SP after cost function = %d, want 512", v, got)
		}
	}
}

// TestCalibrationMonotonicAndLinear reproduces the Figure 4 shape: time is
// nondecreasing in the loop count and asymptotically linear (doubling the
// count roughly doubles the time for large counts).
func TestCalibrationMonotonicAndLinear(t *testing.T) {
	sizes := []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	for name, prof := range arch.Profiles() {
		v := ForProfile(prof)
		pts, err := Calibrate(prof, v, sizes, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// The paper notes the relationship is nonlinear (and noisy) for
		// small loop counts and becomes linear only for large ones; we
		// tolerate small-count jitter up to a few nanoseconds.
		for i := 1; i < len(pts); i++ {
			if pts[i].Ns+4.0 < pts[i-1].Ns {
				t.Errorf("%s: time decreased from n=%d (%.2f) to n=%d (%.2f)",
					name, pts[i-1].Iterations, pts[i-1].Ns, pts[i].Iterations, pts[i].Ns)
			}
		}
		// Large-count linearity: t(1024)/t(512) within [1.7, 2.3].
		last, prev := pts[len(pts)-1], pts[len(pts)-2]
		ratio := last.Ns / prev.Ns
		if math.IsNaN(ratio) || ratio < 1.7 || ratio > 2.3 {
			t.Errorf("%s: t(1024)/t(512) = %.2f, want roughly 2 (linear regime)", name, ratio)
		}
		t.Logf("%s %s: t(1)=%.2fns t(16)=%.2fns t(1024)=%.2fns", name, v, pts[0].Ns, pts[4].Ns, pts[len(pts)-1].Ns)
	}
}

// TestStackVariantCostsMore reproduces the arm vs arm-nostack separation of
// Figure 4 at small sizes: the spilling variant includes two extra memory
// operations.
func TestStackVariantCostsMore(t *testing.T) {
	prof := arch.ARMv8()
	withStack, err := Calibrate(prof, ARM, []int64{1, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	noStack, err := Calibrate(prof, ARMNoStack, []int64{1, 4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withStack {
		if withStack[i].Ns < noStack[i].Ns {
			t.Errorf("n=%d: stack variant (%.2fns) cheaper than no-stack (%.2fns)",
				withStack[i].Iterations, withStack[i].Ns, noStack[i].Ns)
		}
	}
}

// TestInterpolation checks NsForIterations and IterationsForNs round-trip.
func TestInterpolation(t *testing.T) {
	curve := []CalPoint{{1, 2}, {4, 5}, {16, 17}, {64, 65}}
	if got := NsForIterations(curve, 4); got != 5 {
		t.Errorf("NsForIterations(4) = %v, want 5", got)
	}
	if got := NsForIterations(curve, 8); got <= 5 || got >= 17 {
		t.Errorf("NsForIterations(8) = %v, want between 5 and 17", got)
	}
	if got := NsForIterations(curve, 256); got <= 65 {
		t.Errorf("NsForIterations(256) = %v, want extrapolated above 65", got)
	}
	if got := IterationsForNs(curve, 16.5); got != 16 {
		t.Errorf("IterationsForNs(16.5) = %v, want 16", got)
	}
}

// TestInjectionModes checks Apply emits the expected instruction counts.
func TestInjectionModes(t *testing.T) {
	b := arch.NewBuilder()
	Nothing().Apply(b)
	if b.Len() != 0 {
		t.Errorf("Nothing emitted %d instructions", b.Len())
	}
	Nops(ARM).Apply(b)
	if b.Len() != StaticLen(ARM) {
		t.Errorf("Nops emitted %d, want %d", b.Len(), StaticLen(ARM))
	}
	b2 := arch.NewBuilder()
	Cost(POWER, 10).Apply(b2)
	if b2.Len() != StaticLen(POWER) {
		t.Errorf("Cost emitted %d, want %d", b2.Len(), StaticLen(POWER))
	}
}
