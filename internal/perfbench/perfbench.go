// Package perfbench holds the simulator performance benchmarks shared by
// the `go test -bench BenchmarkSim` harness (bench_test.go) and the
// cmd/wmmperf regression tool.  One definition serves both so the numbers
// CI gates on are the numbers developers reproduce locally.
package perfbench

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/javabench"
)

// Bench is one named benchmark body.
type Bench struct {
	Name string
	Fn   func(b *testing.B)
	// Cycles is the simulated cycle count per iteration for bodies that
	// drive the raw cycle loop; zero for sample-level bodies.
	Cycles int64
}

// steadyProg builds the per-core program used by the cycle-loop
// benchmarks: a non-halting mix of ALU work, loads, stores and fences that
// keeps every pipeline subsystem busy (no idle fast-path escape).
func steadyProg(prof *arch.Profile, core int) arch.Program {
	fence := arch.DMBIshSt
	if prof.Flavor == arch.NonMCA {
		fence = arch.LwSync
	}
	b := arch.NewBuilder()
	b.MovImm(0, 0)
	b.Label("loop")
	b.Work(1)
	b.Load(2, 1, int64(core*64))
	b.AddImm(2, 2, 3)
	b.Store(2, 1, int64(core*64))
	b.Fence(fence)
	b.Load(3, 1, int64(((core+1)%4)*64))
	b.Add(4, 2, 3)
	b.Mul(4, 4, 2)
	b.AddImm(0, 0, 1)
	b.B("loop")
	return b.MustBuild()
}

// simCycles measures raw simulation throughput: cycles simulated per
// wall-clock second on a 4-core machine, reusing one machine via Reset.
// Steady state allocates nothing per iteration.
func simCycles(prof *arch.Profile, cycles int64) func(b *testing.B) {
	return func(b *testing.B) {
		m, err := sim.New(prof, sim.Config{Cores: 4, MemWords: 1 << 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		progs := make([]arch.Program, 4)
		for c := range progs {
			progs[c] = steadyProg(prof, c)
		}
		// One warm run lets the reusable buffers (store buffers, propagation
		// heaps, result storage) reach their steady capacity, so the timed
		// region measures the true 0 allocs/op steady state.
		m.Reset(0)
		for c, p := range progs {
			if err := m.LoadProgram(c, p); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Run(cycles); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset(int64(i) + 1)
			for c, p := range progs {
				if err := m.LoadProgram(c, p); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := m.Run(cycles); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/sec")
	}
}

// simReset measures Machine.Reset alone: the fixed per-sample overhead of
// machine reuse.  Allocates nothing.
func simReset(prof *arch.Profile) func(b *testing.B) {
	return func(b *testing.B) {
		m, err := sim.New(prof, sim.Config{Cores: 4, MemWords: 1 << 12, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Reset(int64(i) + 1)
		}
	}
}

// simSample measures one full benchmark sample through the workload layer
// with a MachineCache, i.e. ns/sample as the experiment drivers see it.
func simSample(prof *arch.Profile) func(b *testing.B) {
	return func(b *testing.B) {
		bench := javabench.Spark()
		env := workload.DefaultEnv(prof)
		mc := workload.NewMachineCache()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := workload.RunWith(mc, bench, env, workload.SampleSeed(1, i)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Benchmarks returns the full suite.  short trims the per-iteration cycle
// counts so a full sweep finishes in CI time.
func Benchmarks(short bool) []Bench {
	cycles := int64(200_000)
	if short {
		cycles = 50_000
	}
	var out []Bench
	for _, prof := range []*arch.Profile{arch.ARMv8(), arch.POWER7()} {
		out = append(out,
			Bench{Name: "SimCycles/" + prof.Name, Fn: simCycles(prof, cycles), Cycles: cycles},
			Bench{Name: "SimReset/" + prof.Name, Fn: simReset(prof)},
			Bench{Name: "SimSample/" + prof.Name, Fn: simSample(prof)},
		)
	}
	return out
}

// Result is one benchmark measurement in the BENCH_*.json schema.
type Result struct {
	Name         string  `json:"name"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`
}

// Report is the BENCH_*.json document: the microbenchmark suite plus an
// optional end-to-end wall-time measurement of `wmmbench -short all` and
// an optional repeated-sweep cache-effectiveness measurement.
type Report struct {
	GoOS            string       `json:"goos"`
	GoArch          string       `json:"goarch"`
	Short           bool         `json:"short"`
	ShortAllSeconds float64      `json:"short_all_seconds,omitempty"`
	RepeatedSweep   *SweepReport `json:"repeated_sweep,omitempty"`
	Results         []Result     `json:"results"`
}

// Run executes the suite via testing.Benchmark and collects Results.
func Run(short bool, logf func(format string, args ...any)) []Result {
	var out []Result
	for _, pb := range Benchmarks(short) {
		r := testing.Benchmark(pb.Fn)
		res := Result{
			Name:        pb.Name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
		}
		if pb.Cycles > 0 {
			res.CyclesPerSec = float64(pb.Cycles) * float64(r.N) / r.T.Seconds()
		}
		if logf != nil {
			logf("%-20s %12.0f ns/op %8.0f allocs/op %14.0f cycles/sec\n",
				pb.Name, res.NsPerOp, res.AllocsPerOp, res.CyclesPerSec)
		}
		out = append(out, res)
	}
	return out
}

// Compare checks cur against base with a relative tolerance on ns/op (CI
// hosts are noisy; tol is typically 0.20) and an exact gate on allocs/op
// (allocation counts are deterministic, so any growth is a regression).
// It returns one message per violation.
func Compare(base, cur []Result, tol float64) []string {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var bad []string
	for _, c := range cur {
		b, ok := byName[c.Name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			bad = append(bad, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%",
				c.Name, c.NsPerOp, b.NsPerOp, tol*100))
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			bad = append(bad, fmt.Sprintf("%s: allocs/op %.0f exceeds baseline %.0f",
				c.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return bad
}
