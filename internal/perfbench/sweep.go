package perfbench

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"repro/internal/engine"
	"repro/internal/resultcache"
	"repro/wmm/client"
)

// SweepReport measures the content-addressed result cache end to end:
// one server, the same multi-experiment sweep submitted twice.  The
// first pass executes every job; the second is served from the cache,
// so SecondPassSeconds is dominated by HTTP and dispatch overhead and
// Speedup is the user-visible win of deduplication.
type SweepReport struct {
	Experiments       []string `json:"experiments"`
	FirstPassSeconds  float64  `json:"first_pass_seconds"`
	SecondPassSeconds float64  `json:"second_pass_seconds"`
	Speedup           float64  `json:"speedup"`
	CacheHits         int64    `json:"cache_hits"`
	CacheMisses       int64    `json:"cache_misses"`
}

// RepeatedSweep runs the repeated-sweep scenario against an in-process
// server with an in-memory result cache, mirroring a wmmd deployment
// with -cache-entries at its default.  It fails if the two passes do
// not produce byte-identical canonical JSON — the cache must never
// trade correctness for speed.
func RepeatedSweep(short bool) (SweepReport, error) {
	rep := SweepReport{Experiments: []string{"fig4", "txt3"}}
	samples := 4
	if short {
		samples = 2
	}

	eng := engine.New(engine.Options{})
	defer eng.Close()
	cache := resultcache.New(resultcache.Options{Registry: eng.Metrics()})
	api := engine.NewServer(eng, engine.ServerOptions{
		Parallel: 2,
		Dispatch: &engine.DispatchOptions{Cache: cache},
	})
	ts := httptest.NewServer(api.Handler())
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	defer api.Shutdown(context.Background())
	cl := client.New(ts.URL)

	spec := client.RunSpec{Experiments: rep.Experiments, Short: true, Samples: samples, Seed: 3, Parallel: 2}
	pass := func() (float64, []byte, error) {
		start := time.Now()
		sub, err := cl.SubmitRun(ctx, spec)
		if err != nil {
			return 0, nil, fmt.Errorf("submit: %w", err)
		}
		st, err := cl.WaitRun(ctx, sub.ID, 5*time.Millisecond)
		if err != nil {
			return 0, nil, fmt.Errorf("wait %s: %w", sub.ID, err)
		}
		if st.State != client.StateDone {
			return 0, nil, fmt.Errorf("run %s finished %q, want done", sub.ID, st.State)
		}
		secs := time.Since(start).Seconds()
		canon, err := cl.CanonicalRun(ctx, sub.ID)
		if err != nil {
			return 0, nil, fmt.Errorf("canonical %s: %w", sub.ID, err)
		}
		return secs, canon, nil
	}

	var firstCanon, secondCanon []byte
	var err error
	if rep.FirstPassSeconds, firstCanon, err = pass(); err != nil {
		return rep, fmt.Errorf("first pass: %w", err)
	}
	if rep.SecondPassSeconds, secondCanon, err = pass(); err != nil {
		return rep, fmt.Errorf("second pass: %w", err)
	}
	if string(firstCanon) != string(secondCanon) {
		return rep, fmt.Errorf("cached pass diverged from executed pass (canonical JSON differs, %d vs %d bytes)",
			len(firstCanon), len(secondCanon))
	}

	st := cache.Stats()
	rep.CacheHits, rep.CacheMisses = st.Hits, st.Misses
	if st.Hits < int64(len(rep.Experiments)) {
		return rep, fmt.Errorf("second pass hit the cache %d times, want %d", st.Hits, len(rep.Experiments))
	}
	if rep.SecondPassSeconds > 0 {
		rep.Speedup = rep.FirstPassSeconds / rep.SecondPassSeconds
	}
	return rep, nil
}
