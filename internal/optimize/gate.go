package optimize

import (
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
)

// The soundness gate: every candidate strategy must keep the forbidden
// outcome of each gate shape unreachable under exhaustive exploration of
// the reduced choice tree.  The shapes are built THROUGH the platform
// generators, so the exact instruction sequences the candidate would emit
// into real code are what gets model-checked — a candidate that drops a
// required barrier is rejected with a replayed witness trace showing the
// interleaving that breaks it.

// GateOutcome is the gate verdict for one shape.
type GateOutcome struct {
	Shape string `json:"shape"`
	// Sound reports the forbidden outcome was unreachable and the
	// exploration was complete.
	Sound bool `json:"sound"`
	// Runs and States count explorer work.
	Runs   int `json:"runs"`
	States int `json:"states"`
	// Outcome is the violating final-state key when unsound.
	Outcome string `json:"outcome,omitempty"`
	// Witness is the replayed per-core retirement interleaving that
	// produced the violation.
	Witness string `json:"witness,omitempty"`
}

// maxWitnessBytes caps the recorded witness trace.
const maxWitnessBytes = 64 << 10

// primeThread returns a Setup that warms the given lines.
func primeThread(addrs ...int64) func(b *arch.Builder) {
	return func(b *arch.Builder) {
		for _, a := range addrs {
			b.Load(26, litmus.Base, a)
		}
	}
}

// recordResult stores r into thread t's i-th observation slot.
func recordResult(b *arch.Builder, r arch.Reg, t, i int) {
	b.Store(r, litmus.Base, litmus.ResultAddr(t, i))
}

// sbRelaxed is the Dekker violation: both threads read 0.
func sbRelaxed(mem func(int64) int64) bool {
	return mem(litmus.ResultAddr(0, 0)) == 0 && mem(litmus.ResultAddr(1, 0)) == 0
}

// mpRelaxed is the message-passing violation: the flag was seen but the
// data was not.
func mpRelaxed(mem func(int64) int64) bool {
	return mem(litmus.ResultAddr(1, 0)) == 1 && mem(litmus.ResultAddr(1, 1)) == 0
}

func mpHit(mem func(int64) int64) bool {
	return mem(litmus.ResultAddr(1, 0)) == 1
}

// buildGateTest constructs the named shape through the candidate's
// platform generator.
func buildGateTest(platform string, cand Candidate, shape string, prof *arch.Profile) (*litmus.Test, error) {
	switch platform {
	case "jvm":
		j := jvm.New(jvm.Config{Prof: prof, Strategy: *cand.JVM})
		switch shape {
		case "volatile-sb":
			// Dekker: volatile store mine; volatile load other.
			th := func(t int, mine, other int64) litmus.Thread {
				return litmus.Thread{
					Setup: primeThread(litmus.X, litmus.Y),
					Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						j.VolatileStore(b, 2, litmus.Base, mine)
						j.VolatileLoad(b, 3, litmus.Base, other)
						recordResult(b, 3, t, 0)
					},
				}
			}
			return &litmus.Test{
				Name:    "volatile-sb",
				Threads: []litmus.Thread{th(0, litmus.X, litmus.Y), th(1, litmus.Y, litmus.X)},
				Relaxed: sbRelaxed,
			}, nil
		case "volatile-mp":
			// Plain data store, volatile flag; reader loads the
			// volatile flag then the plain data.
			return &litmus.Test{
				Name: "volatile-mp",
				Threads: []litmus.Thread{
					{Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						b.Store(2, litmus.Base, litmus.X)
						j.VolatileStore(b, 2, litmus.Base, litmus.Y)
					}},
					{
						Setup: primeThread(litmus.X),
						Body: func(b *arch.Builder) {
							j.VolatileLoad(b, 2, litmus.Base, litmus.Y)
							b.Load(3, litmus.Base, litmus.X)
							recordResult(b, 2, 1, 0)
							recordResult(b, 3, 1, 1)
						},
					},
				},
				Relaxed: mpRelaxed,
				Hit:     mpHit,
			}, nil
		}
	case "kernel":
		k := kernel.New(kernel.Config{Prof: prof, Strategy: *cand.Kernel})
		switch shape {
		case "rcu-mp":
			// rcu_assign_pointer publication against an
			// rcu_dereference with a true address dependency — the
			// usage pattern read_barrier_depends exists for.
			return &litmus.Test{
				Name: "rcu-mp",
				Threads: []litmus.Thread{
					{Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						b.Store(2, litmus.Base, litmus.X)
						k.RCUAssign(b, 2, litmus.Base, litmus.Y)
					}},
					{
						Setup: primeThread(litmus.X),
						Body: func(b *arch.Builder) {
							k.RCUDereference(b, 2, litmus.Base, litmus.Y)
							// Follow the "pointer": an
							// address-dependent load of X.
							b.Eor(4, 2, 2)
							b.Add(5, litmus.Base, 4)
							b.Load(3, 5, litmus.X)
							recordResult(b, 2, 1, 0)
							recordResult(b, 3, 1, 1)
						},
					},
				},
				Relaxed: mpRelaxed,
				Hit:     mpHit,
			}, nil
		case "acqrel-mp":
			return &litmus.Test{
				Name: "acqrel-mp",
				Threads: []litmus.Thread{
					{Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						k.WriteOnce(b, 2, litmus.Base, litmus.X)
						k.StoreRelease(b, 2, litmus.Base, litmus.Y)
					}},
					{
						Setup: primeThread(litmus.X),
						Body: func(b *arch.Builder) {
							k.LoadAcquire(b, 2, litmus.Base, litmus.Y)
							k.ReadOnce(b, 3, litmus.Base, litmus.X)
							recordResult(b, 2, 1, 0)
							recordResult(b, 3, 1, 1)
						},
					},
				},
				Relaxed: mpRelaxed,
				Hit:     mpHit,
			}, nil
		}
	case "c11":
		c := c11.New(c11.Config{Prof: prof, Strategy: *cand.C11})
		switch shape {
		case "sc-sb":
			th := func(t int, mine, other int64) litmus.Thread {
				return litmus.Thread{
					Setup: primeThread(litmus.X, litmus.Y),
					Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						c.Store(b, c11.SeqCst, 2, litmus.Base, mine)
						c.Load(b, c11.SeqCst, 3, litmus.Base, other)
						recordResult(b, 3, t, 0)
					},
				}
			}
			return &litmus.Test{
				Name:    "sc-sb",
				Threads: []litmus.Thread{th(0, litmus.X, litmus.Y), th(1, litmus.Y, litmus.X)},
				Relaxed: sbRelaxed,
			}, nil
		case "acqrel-mp":
			return &litmus.Test{
				Name: "acqrel-mp",
				Threads: []litmus.Thread{
					{Body: func(b *arch.Builder) {
						b.MovImm(2, 1)
						c.Store(b, c11.Relaxed, 2, litmus.Base, litmus.X)
						c.Store(b, c11.Release, 2, litmus.Base, litmus.Y)
					}},
					{
						Setup: primeThread(litmus.X),
						Body: func(b *arch.Builder) {
							c.Load(b, c11.Acquire, 2, litmus.Base, litmus.Y)
							c.Load(b, c11.Relaxed, 3, litmus.Base, litmus.X)
							recordResult(b, 2, 1, 0)
							recordResult(b, 3, 1, 1)
						},
					},
				},
				Relaxed: mpRelaxed,
				Hit:     mpHit,
			}, nil
		}
	}
	return nil, fmt.Errorf("optimize: no gate shape %q for platform %s", shape, platform)
}

// RunGate runs every configured gate shape for the candidate and returns
// the per-shape verdicts.  An exploration that neither finds a violation
// nor completes within the budget is an error: the gate must never report
// "sound" on an inconclusive search.
func RunGate(sp Spec, cand Candidate) ([]GateOutcome, error) {
	prof, err := sp.Profile()
	if err != nil {
		return nil, err
	}
	out := make([]GateOutcome, 0, len(sp.Gate.Shapes))
	for _, shape := range sp.Gate.Shapes {
		t, err := buildGateTest(sp.Platform, cand, shape, prof)
		if err != nil {
			return nil, err
		}
		r := &litmus.Runner{Prof: prof, Seed: sp.Seed, MaxDelay: sp.Gate.MaxDelay}
		rep, err := r.Exhaustive(t, true)
		if err != nil {
			return nil, fmt.Errorf("optimize: gate %s/%s: %w", cand.Name, shape, err)
		}
		g := GateOutcome{Shape: shape, Runs: rep.Runs, States: rep.States}
		if v := rep.Violation(); v != nil {
			g.Outcome = v.Key
			var buf strings.Builder
			if err := rep.WriteWitness(v, &buf); err != nil {
				return nil, fmt.Errorf("optimize: gate %s/%s witness: %w", cand.Name, shape, err)
			}
			w := buf.String()
			if len(w) > maxWitnessBytes {
				w = w[:maxWitnessBytes] + "\n... (witness truncated)\n"
			}
			g.Witness = w
		} else if !rep.Complete {
			return nil, fmt.Errorf("optimize: gate %s/%s: exploration incomplete within budget", cand.Name, shape)
		} else {
			g.Sound = true
		}
		out = append(out, g)
	}
	return out, nil
}
