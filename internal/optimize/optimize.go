// Package optimize implements the fence-strategy optimizer: a
// deterministic search over the per-barrier lowering strategies each
// platform exposes (the five read_barrier_depends implementations and
// la/sr on the kernel, the JDK8 dmb-bracketed vs JDK9 ldar/stlr lowerings
// plus generated hybrids on the JVM, the per-arch C11 mappings), where
// every candidate must be proved SOUND by an exhaustive litmus gate before
// it is scored FAST against a caller-chosen workload mix with the paper's
// fitted cost model.
//
// The search is a pure function of its Spec: candidates come from the
// platforms' enumerated strategy spaces in a stable order, the gate is an
// exhaustive exploration (not sampling), measurement samples are
// positionally seeded, and the final report is canonicalised — the same
// spec and seed produce byte-identical reports no matter which workers ran
// the cells.
package optimize

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/workload"
)

// Spec describes one optimizer job.  WithDefaults materialises every
// optional field, so a normalised spec is fully explicit; the canonical
// report embeds the normalised form.
type Spec struct {
	// Platform is "jvm", "kernel" or "c11".
	Platform string `json:"platform"`
	// Arch is the architecture profile: "armv8" (MCA) or "power7"
	// (non-MCA).
	Arch string `json:"arch"`
	// Strategies selects candidates by canonical name from the
	// platform's enumerated space; empty means the whole space.
	// Enumeration order is preserved regardless of selector order.
	Strategies []string `json:"strategies,omitempty"`
	// Baseline names the strategy ratios and predicted costs are
	// computed against.  It must be among the selected candidates.
	// Defaults: jvm "jdk8-barriers", kernel "base case", c11 "barriers".
	Baseline string `json:"baseline,omitempty"`
	// Gate configures the litmus soundness gate.
	Gate GateSpec `json:"gate"`
	// Workload configures the scoring workload.
	Workload WorkloadSpec `json:"workload"`
	// Samples is the number of measurement samples per cell (default 5).
	Samples int `json:"samples,omitempty"`
	// FitCosts are the injected per-invocation costs (ns) used to fit
	// the benchmark's sensitivity k (default 8, 32, 128).
	FitCosts []int64 `json:"fit_costs,omitempty"`
	// Seed is the base seed for measurement and gate exploration
	// (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// GateSpec configures the litmus soundness gate.
type GateSpec struct {
	// Shapes lists the litmus shapes every candidate must survive;
	// empty selects the platform's full gate catalogue.
	Shapes []string `json:"shapes,omitempty"`
	// MaxDelay bounds the explorer's alignment-stagger ladder
	// (default 32).
	MaxDelay int64 `json:"max_delay,omitempty"`
}

// WorkloadSpec configures the scoring workload.
type WorkloadSpec struct {
	// Mix maps operation names (e.g. "volatile_loads", "rcu_derefs",
	// "sc_stores", "compute") to per-iteration counts; empty selects the
	// platform's default volatile-heavy mix.
	Mix map[string]int `json:"mix,omitempty"`
	// Cores is the simulated core count (default 4).
	Cores int `json:"cores,omitempty"`
	// MaxCycles bounds each measured run (default 120000).
	MaxCycles int64 `json:"max_cycles,omitempty"`
}

// gateCatalogue lists the soundness shapes per platform, in gate order.
var gateCatalogue = map[string][]string{
	"jvm":    {"volatile-sb", "volatile-mp"},
	"kernel": {"rcu-mp", "acqrel-mp"},
	"c11":    {"sc-sb", "acqrel-mp"},
}

// defaultBaseline is the stock strategy per platform.
var defaultBaseline = map[string]string{
	"jvm":    "jdk8-barriers",
	"kernel": "base case",
	"c11":    "barriers",
}

// defaultMix is the volatile-heavy scoring mix per platform (the paper's
// DaCapo-style mixture: mostly private work with a meaningful synchronising
// fraction).
var defaultMix = map[string]map[string]int{
	"jvm": {
		"compute": 6, "priv_loads": 4, "priv_stores": 2, "shared_loads": 1,
		"volatile_loads": 4, "volatile_stores": 2, "publishes": 1,
	},
	"kernel": {
		"compute": 6, "priv_loads": 4, "priv_stores": 2, "shared_loads": 1,
		"read_onces": 3, "rcu_derefs": 3, "rcu_assigns": 1, "write_onces": 1,
	},
	"c11": {
		"compute": 6, "priv_loads": 4, "priv_stores": 2, "shared_loads": 1,
		"sc_loads": 3, "sc_stores": 2, "rel_acq_pairs": 1,
	},
}

// WithDefaults returns a copy of sp with every optional field materialised.
func (sp Spec) WithDefaults() Spec {
	if sp.Platform == "" {
		sp.Platform = "jvm"
	}
	if sp.Arch == "" {
		sp.Arch = "armv8"
	}
	if sp.Baseline == "" {
		sp.Baseline = defaultBaseline[sp.Platform]
	}
	if len(sp.Gate.Shapes) == 0 {
		sp.Gate.Shapes = append([]string(nil), gateCatalogue[sp.Platform]...)
	}
	if sp.Gate.MaxDelay == 0 {
		sp.Gate.MaxDelay = 32
	}
	if len(sp.Workload.Mix) == 0 {
		sp.Workload.Mix = make(map[string]int)
		for k, v := range defaultMix[sp.Platform] {
			sp.Workload.Mix[k] = v
		}
	}
	if sp.Workload.Cores == 0 {
		sp.Workload.Cores = 4
	}
	if sp.Workload.MaxCycles == 0 {
		sp.Workload.MaxCycles = 120_000
	}
	if sp.Samples == 0 {
		sp.Samples = 5
	}
	if len(sp.FitCosts) == 0 {
		sp.FitCosts = []int64{8, 32, 128}
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// Profile resolves the spec's architecture profile.
func (sp Spec) Profile() (*arch.Profile, error) {
	switch sp.Arch {
	case "armv8":
		return arch.ARMv8(), nil
	case "power7":
		return arch.POWER7(), nil
	}
	return nil, fmt.Errorf("optimize: unknown arch %q (want \"armv8\" or \"power7\")", sp.Arch)
}

// Validate checks a normalised spec.  Call on the WithDefaults form.
func (sp Spec) Validate() error {
	if _, ok := gateCatalogue[sp.Platform]; !ok {
		return fmt.Errorf("optimize: unknown platform %q (want \"jvm\", \"kernel\" or \"c11\")", sp.Platform)
	}
	if _, err := sp.Profile(); err != nil {
		return err
	}
	if _, err := sp.Candidates(); err != nil {
		return err
	}
	known := map[string]bool{}
	for _, s := range gateCatalogue[sp.Platform] {
		known[s] = true
	}
	for _, s := range sp.Gate.Shapes {
		if !known[s] {
			return fmt.Errorf("optimize: unknown gate shape %q for platform %s", s, sp.Platform)
		}
	}
	if sp.Gate.MaxDelay < 1 || sp.Gate.MaxDelay > 384 {
		return fmt.Errorf("optimize: gate max_delay %d out of range [1,384]", sp.Gate.MaxDelay)
	}
	if _, err := sp.mix(); err != nil {
		return err
	}
	if sp.Workload.Cores < 2 || sp.Workload.Cores > 8 {
		return fmt.Errorf("optimize: cores %d out of range [2,8]", sp.Workload.Cores)
	}
	if sp.Workload.MaxCycles < 10_000 || sp.Workload.MaxCycles > 1_000_000 {
		return fmt.Errorf("optimize: max_cycles %d out of range [10000,1000000]", sp.Workload.MaxCycles)
	}
	if sp.Samples < 2 || sp.Samples > 64 {
		return fmt.Errorf("optimize: samples %d out of range [2,64]", sp.Samples)
	}
	if len(sp.FitCosts) < 2 {
		return fmt.Errorf("optimize: need at least 2 fit_costs, have %d", len(sp.FitCosts))
	}
	prev := int64(0)
	for _, a := range sp.FitCosts {
		if a < 1 || a > 100_000 {
			return fmt.Errorf("optimize: fit cost %d out of range [1,100000]", a)
		}
		if a <= prev {
			return fmt.Errorf("optimize: fit_costs must be strictly increasing")
		}
		prev = a
	}
	if sp.Seed < 1 {
		return fmt.Errorf("optimize: seed must be positive")
	}
	return nil
}

// Candidate is one strategy under consideration; exactly one of the
// platform fields is non-nil.
type Candidate struct {
	Name   string
	JVM    *jvm.Strategy
	Kernel *kernel.Strategy
	C11    *c11.Strategy
}

// Encoding returns the candidate's declarative spec encoding for the
// report.
func (c Candidate) Encoding() StrategyEncoding {
	var e StrategyEncoding
	switch {
	case c.JVM != nil:
		sp := c.JVM.Spec()
		e.JVM = &sp
	case c.Kernel != nil:
		sp := c.Kernel.Spec()
		e.Kernel = &sp
	case c.C11 != nil:
		sp := c.C11.Spec()
		e.C11 = &sp
	}
	return e
}

// env binds the candidate strategy into a workload environment.
func (c Candidate) env(prof *arch.Profile) workload.Env {
	e := workload.DefaultEnv(prof)
	switch {
	case c.JVM != nil:
		e.JVMStrategy = *c.JVM
	case c.Kernel != nil:
		e.KernelStrategy = *c.Kernel
	case c.C11 != nil:
		e.C11Strategy = *c.C11
	}
	return e
}

// space returns the platform's enumerated strategy space as candidates, in
// enumeration order.
func space(platform string) []Candidate {
	var out []Candidate
	switch platform {
	case "jvm":
		for _, st := range jvm.Enumerate() {
			st := st
			out = append(out, Candidate{Name: st.Name, JVM: &st})
		}
	case "kernel":
		for _, st := range kernel.Enumerate() {
			st := st
			out = append(out, Candidate{Name: st.Name, Kernel: &st})
		}
	case "c11":
		for _, st := range c11.Enumerate() {
			st := st
			out = append(out, Candidate{Name: st.Name, C11: &st})
		}
	}
	return out
}

// Candidates resolves the spec's strategy selectors against the platform's
// enumerated space, preserving enumeration order, and checks the baseline
// is among them.
func (sp Spec) Candidates() ([]Candidate, error) {
	all := space(sp.Platform)
	if len(sp.Strategies) == 0 {
		return sp.checkBaseline(all)
	}
	want := make(map[string]bool, len(sp.Strategies))
	for _, n := range sp.Strategies {
		want[n] = true
	}
	var out []Candidate
	for _, c := range all {
		if want[c.Name] {
			out = append(out, c)
			delete(want, c.Name)
		}
	}
	if len(want) > 0 {
		var missing []string
		for n := range want {
			missing = append(missing, n)
		}
		sort.Strings(missing)
		return nil, fmt.Errorf("optimize: unknown %s strategies %v", sp.Platform, missing)
	}
	return sp.checkBaseline(out)
}

func (sp Spec) checkBaseline(cands []Candidate) ([]Candidate, error) {
	for _, c := range cands {
		if c.Name == sp.Baseline {
			return cands, nil
		}
	}
	return nil, fmt.Errorf("optimize: baseline %q not among selected strategies", sp.Baseline)
}

// mixFields maps spec mix-operation names onto Mix fields, per platform
// section.  The common section applies to every platform.
var mixCommon = map[string]func(*workload.Mix) *int{
	"compute":      func(m *workload.Mix) *int { return &m.Compute },
	"priv_loads":   func(m *workload.Mix) *int { return &m.PrivLoads },
	"priv_stores":  func(m *workload.Mix) *int { return &m.PrivStores },
	"shared_loads": func(m *workload.Mix) *int { return &m.SharedLoads },
}

var mixPlatform = map[string]map[string]func(*workload.Mix) *int{
	"jvm": {
		"volatile_loads":  func(m *workload.Mix) *int { return &m.VolatileLoads },
		"volatile_stores": func(m *workload.Mix) *int { return &m.VolatileStores },
		"publishes":       func(m *workload.Mix) *int { return &m.Publishes },
		"card_marks":      func(m *workload.Mix) *int { return &m.CardMarks },
		"atomic_adds":     func(m *workload.Mix) *int { return &m.AtomicAdds },
		"lock_pairs":      func(m *workload.Mix) *int { return &m.LockPairs },
		"full_fences":     func(m *workload.Mix) *int { return &m.FullFences },
		"load_fences":     func(m *workload.Mix) *int { return &m.LoadFences },
	},
	"kernel": {
		"read_onces":   func(m *workload.Mix) *int { return &m.ReadOnces },
		"write_onces":  func(m *workload.Mix) *int { return &m.WriteOnces },
		"rcu_derefs":   func(m *workload.Mix) *int { return &m.RCUDerefs },
		"rcu_assigns":  func(m *workload.Mix) *int { return &m.RCUAssigns },
		"spin_pairs":   func(m *workload.Mix) *int { return &m.SpinPairs },
		"atomic_incs":  func(m *workload.Mix) *int { return &m.AtomicIncs },
		"syscalls":     func(m *workload.Mix) *int { return &m.Syscalls },
		"seq_reads":    func(m *workload.Mix) *int { return &m.SeqReads },
		"seq_writes":   func(m *workload.Mix) *int { return &m.SeqWrites },
		"mbs":          func(m *workload.Mix) *int { return &m.MBs },
		"mandatory_mb": func(m *workload.Mix) *int { return &m.MandatoryMB },
	},
	"c11": {
		"sc_loads":      func(m *workload.Mix) *int { return &m.SCLoads },
		"sc_stores":     func(m *workload.Mix) *int { return &m.SCStores },
		"rel_acq_pairs": func(m *workload.Mix) *int { return &m.RelAcqPairs },
		"relaxed_ops":   func(m *workload.Mix) *int { return &m.RelaxedOps },
		"fetch_adds":    func(m *workload.Mix) *int { return &m.FetchAdds },
	},
}

// MixNames returns the operation names a platform's workload mix accepts,
// sorted (common section first is not guaranteed; names are unique).
func MixNames(platform string) []string {
	var out []string
	for n := range mixCommon {
		out = append(out, n)
	}
	for n := range mixPlatform[platform] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// mix decodes the spec's named mix into a workload.Mix and checks it
// exercises at least one platform operation (otherwise every fencing
// strategy scores identically and the search is vacuous).
func (sp Spec) mix() (workload.Mix, error) {
	var m workload.Mix
	plat := mixPlatform[sp.Platform]
	platOps := 0
	for name, v := range sp.Workload.Mix {
		if v < 0 || v > 64 {
			return m, fmt.Errorf("optimize: mix[%q] = %d out of range [0,64]", name, v)
		}
		if f, ok := mixCommon[name]; ok {
			*f(&m) = v
			continue
		}
		if f, ok := plat[name]; ok {
			*f(&m) = v
			platOps += v
			continue
		}
		return m, fmt.Errorf("optimize: unknown mix operation %q for platform %s (known: %v)",
			name, sp.Platform, MixNames(sp.Platform))
	}
	if platOps < 1 {
		return m, fmt.Errorf("optimize: mix exercises no %s operations", sp.Platform)
	}
	return m, nil
}
