package optimize

import (
	"bytes"
	"strings"
	"testing"
)

// TestJVMRankingARMv8 pins the paper's headline result through the whole
// optimizer: on the ARMv8 MCA profile with the volatile-heavy mix, the
// JDK9 ldar/stlr strategy is sound and outranks the JDK8 dmb-bracketed
// strategy, while the deliberately-weakened hybrid (trailing StoreLoad
// dropped) is rejected by the litmus gate with a recorded witness.
func TestJVMRankingARMv8(t *testing.T) {
	rep, err := Run(Spec{Platform: "jvm", Arch: "armv8"})
	if err != nil {
		t.Fatal(err)
	}
	rank := map[string]int{}
	var nosl *CandidateReport
	for i := range rep.Candidates {
		c := &rep.Candidates[i]
		rank[c.Name] = c.Rank
		if c.Name == "hybrid-ldar+dmb-nosl" {
			nosl = c
		}
	}

	if rank["jdk9-acqrel"] == 0 {
		t.Fatal("jdk9-acqrel rejected by the gate; want sound")
	}
	if rank["jdk8-barriers"] == 0 {
		t.Fatal("jdk8-barriers rejected by the gate; want sound")
	}
	if rank["jdk9-acqrel"] >= rank["jdk8-barriers"] {
		t.Errorf("jdk9-acqrel ranked %d, jdk8-barriers %d; want jdk9 above jdk8",
			rank["jdk9-acqrel"], rank["jdk8-barriers"])
	}
	if rep.Best != "jdk9-acqrel" {
		t.Errorf("best = %q, want jdk9-acqrel", rep.Best)
	}

	if nosl == nil {
		t.Fatal("hybrid-ldar+dmb-nosl missing from report")
	}
	if nosl.Sound || nosl.Rank != 0 {
		t.Errorf("weakened hybrid: sound=%v rank=%d, want rejected", nosl.Sound, nosl.Rank)
	}
	if nosl.Perf != nil {
		t.Error("weakened hybrid was measured; unsound candidates must not be scored")
	}
	var witnessed bool
	for _, g := range nosl.Gate {
		if g.Shape == "volatile-sb" && !g.Sound {
			if g.Outcome == "" || g.Witness == "" {
				t.Errorf("volatile-sb rejection lacks outcome/witness: %+v", g)
			}
			witnessed = true
		}
	}
	if !witnessed {
		t.Error("weakened hybrid not rejected on volatile-sb")
	}
}

// TestKernelRankingARMv8 pins §4.3: every read_barrier_depends
// implementation is sound on ARMv8 (the address dependency already orders
// the RCU dereference), so the optimizer picks the free base case and the
// paid-for barriers rank below it.
func TestKernelRankingARMv8(t *testing.T) {
	rep, err := Run(Spec{Platform: "kernel", Arch: "armv8"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unsound != 0 {
		t.Errorf("%d kernel strategies rejected; all six should be sound on armv8", rep.Unsound)
	}
	if rep.Best != "base case" {
		t.Errorf("best = %q, want \"base case\" (read_barrier_depends buys nothing on ARMv8)", rep.Best)
	}
	rank := map[string]int{}
	for _, c := range rep.Candidates {
		rank[c.Name] = c.Rank
	}
	if rank["dmb ish"] <= rank["base case"] {
		t.Errorf("dmb ish ranked %d vs base case %d; the full barrier must not win", rank["dmb ish"], rank["base case"])
	}
}

// TestC11RankingARMv8 checks the C11 mapping choice: both per-arch
// mappings pass the gate and the ldar/stlr mapping wins on ARMv8.
func TestC11RankingARMv8(t *testing.T) {
	rep, err := Run(Spec{Platform: "c11", Arch: "armv8"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unsound != 0 {
		t.Errorf("%d c11 strategies rejected; both mappings are sound", rep.Unsound)
	}
	if rep.Best != "acq-rel" {
		t.Errorf("best = %q, want acq-rel on armv8", rep.Best)
	}
}

// TestReportByteIdentity pins the determinism contract: the same spec and
// seed produce byte-identical canonical reports across runs.
func TestReportByteIdentity(t *testing.T) {
	spec := Spec{
		Platform:   "jvm",
		Arch:       "armv8",
		Strategies: []string{"jdk8-barriers", "jdk9-acqrel", "hybrid-ldar+dmb-nosl"},
		Samples:    3,
		FitCosts:   []int64{8, 32},
		Workload:   WorkloadSpec{MaxCycles: 60_000},
		Seed:       7,
	}
	r1, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := r1.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := r2.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("canonical reports differ:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", b1, b2)
	}
	if !bytes.HasSuffix(b1, []byte("\n")) {
		t.Error("canonical report must end with a newline")
	}
}

// TestCellsMatchLocalRun pins that executing the cells individually (the
// dispatcher's view) assembles into the exact report the in-process driver
// produces.
func TestCellsMatchLocalRun(t *testing.T) {
	spec := Spec{
		Platform:   "jvm",
		Arch:       "armv8",
		Strategies: []string{"jdk8-barriers", "jdk9-acqrel"},
		Samples:    3,
		FitCosts:   []int64{8, 32},
		Workload:   WorkloadSpec{MaxCycles: 60_000},
	}
	want, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	sp := spec.WithDefaults()
	results := map[string]CellResult{}
	gates, err := sp.GateCells()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range gates {
		res, err := RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		results[res.Cell] = res
	}
	sound, err := SoundNames(sp, results)
	if err != nil {
		t.Fatal(err)
	}
	score, err := sp.ScoreCells(sound)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range score {
		res, err := RunCell(c)
		if err != nil {
			t.Fatal(err)
		}
		results[res.Cell] = res
	}
	got, err := Assemble(sp, results)
	if err != nil {
		t.Fatal(err)
	}

	wb, _ := want.CanonicalJSON()
	gb, _ := got.CanonicalJSON()
	if !bytes.Equal(wb, gb) {
		t.Fatalf("cell-wise assembly differs from local run:\n%s\nvs\n%s", gb, wb)
	}
}

// TestSpecValidation pins the optimizer's input validation errors.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bad platform", Spec{Platform: "rust"}, "unknown platform"},
		{"bad arch", Spec{Arch: "riscv"}, "unknown arch"},
		{"unknown strategy", Spec{Strategies: []string{"jdk8-barriers", "jdk11"}}, "unknown jvm strategies"},
		{"baseline excluded", Spec{Strategies: []string{"jdk9-acqrel"}}, "baseline"},
		{"bad mix op", Spec{Workload: WorkloadSpec{Mix: map[string]int{"rcu_derefs": 1}}}, "unknown mix operation"},
		{"vacuous mix", Spec{Workload: WorkloadSpec{Mix: map[string]int{"compute": 4}}}, "no jvm operations"},
		{"bad gate shape", Spec{Gate: GateSpec{Shapes: []string{"iriw"}}}, "unknown gate shape"},
		{"one fit cost", Spec{FitCosts: []int64{8}}, "fit_costs"},
		{"unsorted fit costs", Spec{FitCosts: []int64{32, 8}}, "increasing"},
		{"samples out of range", Spec{Samples: 100}, "samples"},
	}
	for _, tc := range cases {
		err := tc.spec.WithDefaults().Validate()
		if err == nil {
			t.Errorf("%s: validated; want error containing %q", tc.name, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

// TestMixNames sanity-checks the mix-name catalogue used by API docs.
func TestMixNames(t *testing.T) {
	for _, plat := range []string{"jvm", "kernel", "c11"} {
		names := MixNames(plat)
		if len(names) < 5 {
			t.Errorf("%s: only %d mix names", plat, len(names))
		}
		seen := map[string]bool{}
		for _, n := range names {
			if seen[n] {
				t.Errorf("%s: duplicate mix name %q", plat, n)
			}
			seen[n] = true
		}
		if !seen["compute"] {
			t.Errorf("%s: missing common mix name \"compute\"", plat)
		}
	}
}
