package optimize

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// A Cell is one deterministic unit of optimizer work: a pure function of
// its descriptor, so any worker can execute it from the wire form alone
// and its result is content-addressable for the cluster result cache.
type Cell struct {
	// Kind is "gate", "measure" or "fit".
	Kind string `json:"kind"`
	// Strategy names the candidate (gate and measure cells).
	Strategy string `json:"strategy,omitempty"`
	// CostNs is the injected per-invocation cost (fit cells).
	CostNs int64 `json:"cost_ns,omitempty"`
	// Spec is the normalised job spec the cell belongs to.
	Spec Spec `json:"spec"`
}

// Name returns the cell's unique name within its job; it doubles as the
// experiment label in cached results, so a cache hit for a different cell
// is detectable.
func (c Cell) Name() string {
	switch c.Kind {
	case "gate":
		return "gate/" + c.Strategy
	case "measure":
		return "measure/" + c.Strategy
	default:
		return fmt.Sprintf("fit/%06d", c.CostNs)
	}
}

// CellResult is the outcome of one cell.
type CellResult struct {
	Cell string `json:"cell"`
	// Gate holds the per-shape verdicts (gate cells).
	Gate []GateOutcome `json:"gate,omitempty"`
	// Perf is the measurement summary (measure and fit cells).
	Perf *stats.Summary `json:"perf,omitempty"`
}

// GateCells returns the first-wave cells: one soundness gate per
// candidate, in enumeration order.
func (sp Spec) GateCells() ([]Cell, error) {
	cands, err := sp.Candidates()
	if err != nil {
		return nil, err
	}
	out := make([]Cell, 0, len(cands))
	for _, c := range cands {
		out = append(out, Cell{Kind: "gate", Strategy: c.Name, Spec: sp})
	}
	return out, nil
}

// ScoreCells returns the second-wave cells for the candidates that
// survived the gate: one measurement per survivor plus the sensitivity-fit
// cells (which run under the baseline strategy).
func (sp Spec) ScoreCells(sound map[string]bool) ([]Cell, error) {
	cands, err := sp.Candidates()
	if err != nil {
		return nil, err
	}
	var out []Cell
	for _, c := range cands {
		if sound[c.Name] {
			out = append(out, Cell{Kind: "measure", Strategy: c.Name, Spec: sp})
		}
	}
	if sound[sp.Baseline] {
		for _, a := range sp.FitCosts {
			out = append(out, Cell{Kind: "fit", CostNs: a, Spec: sp})
		}
	}
	return out, nil
}

// paths returns the instrumented code paths for the platform: all paths
// that get nop padding, and the subset carrying injected cost in fit
// cells.
func paths(platform string) (all, instr []arch.PathID) {
	switch platform {
	case "jvm":
		all = []arch.PathID{jvm.PathAnyBarrier}
		instr = all
	case "kernel":
		all = kernel.Paths
		instr = []arch.PathID{kernel.PathReadBarrierDepends}
	case "c11":
		all = c11.Paths
		instr = []arch.PathID{c11.PathSeqCst}
	}
	return all, instr
}

// benchmark assembles the scoring benchmark for the spec.
func (sp Spec) benchmark() (*workload.Benchmark, error) {
	mix, err := sp.mix()
	if err != nil {
		return nil, err
	}
	var plat workload.Platform
	switch sp.Platform {
	case "jvm":
		plat = workload.JVMPlatform
	case "kernel":
		plat = workload.KernelPlatform
	case "c11":
		plat = workload.C11Platform
	}
	const memWords = 1 << 15
	cores := sp.Workload.Cores
	layout, err := workload.DefaultLayout(memWords, cores, 1<<11, 1<<9, 16)
	if err != nil {
		return nil, err
	}
	return &workload.Benchmark{
		Name:         "optimize/" + sp.Platform,
		Platform:     plat,
		Metric:       workload.Throughput,
		Cores:        cores,
		MemWords:     memWords,
		MaxCycles:    sp.Workload.MaxCycles,
		WarmupCycles: sp.Workload.MaxCycles / 5,
		Build: func(ctx *workload.BuildCtx) error {
			return mix.BuildLoop(ctx, layout, cores)
		},
	}, nil
}

// RunCell executes one cell.  The result is a deterministic function of
// the cell descriptor: gate cells explore exhaustively with the spec seed,
// measurement cells draw positionally-seeded samples.
func RunCell(cell Cell) (CellResult, error) {
	sp := cell.Spec.WithDefaults()
	if err := sp.Validate(); err != nil {
		return CellResult{}, err
	}
	res := CellResult{Cell: cell.Name()}
	prof, err := sp.Profile()
	if err != nil {
		return CellResult{}, err
	}
	cands, err := sp.Candidates()
	if err != nil {
		return CellResult{}, err
	}
	find := func(name string) (Candidate, error) {
		for _, c := range cands {
			if c.Name == name {
				return c, nil
			}
		}
		return Candidate{}, fmt.Errorf("optimize: cell names unknown strategy %q", name)
	}

	switch cell.Kind {
	case "gate":
		cand, err := find(cell.Strategy)
		if err != nil {
			return CellResult{}, err
		}
		res.Gate, err = RunGate(sp, cand)
		if err != nil {
			return CellResult{}, err
		}
	case "measure", "fit":
		bench, err := sp.benchmark()
		if err != nil {
			return CellResult{}, err
		}
		all, instr := paths(sp.Platform)
		var env workload.Env
		if cell.Kind == "measure" {
			cand, err := find(cell.Strategy)
			if err != nil {
				return CellResult{}, err
			}
			env = cand.env(prof).NopBase(all)
		} else {
			if cell.CostNs < 1 {
				return CellResult{}, fmt.Errorf("optimize: fit cell with cost %d", cell.CostNs)
			}
			base, err := find(sp.Baseline)
			if err != nil {
				return CellResult{}, err
			}
			env = base.env(prof).WithCost(instr, all, cell.CostNs)
		}
		sum, err := workload.Measure(bench, env, sp.Samples, sp.Seed)
		if err != nil {
			return CellResult{}, err
		}
		res.Perf = &sum
	default:
		return CellResult{}, fmt.Errorf("optimize: unknown cell kind %q", cell.Kind)
	}
	return res, nil
}
