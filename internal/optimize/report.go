package optimize

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/fit"
	"repro/internal/platform/c11"
	"repro/internal/platform/jvm"
	"repro/internal/platform/kernel"
	"repro/internal/stats"
)

// ReportVersion tags the canonical report format; byte-identity guarantees
// hold only between equal versions.
const ReportVersion = "optimize-v1"

// StrategyEncoding is a candidate's declarative spec in the report; the
// field matching the job's platform is set.
type StrategyEncoding struct {
	JVM    *jvm.Spec    `json:"jvm,omitempty"`
	Kernel *kernel.Spec `json:"kernel,omitempty"`
	C11    *c11.Spec    `json:"c11,omitempty"`
}

// CandidateReport is one candidate's verdict and score.
type CandidateReport struct {
	Name  string           `json:"name"`
	Spec  StrategyEncoding `json:"spec"`
	Sound bool             `json:"sound"`
	Gate  []GateOutcome    `json:"gate"`
	// Perf is the measured summary; only sound candidates are measured.
	Perf *stats.Summary `json:"perf,omitempty"`
	// Ratio is measured performance relative to the baseline (geometric
	// means; >1 is faster).
	Ratio float64 `json:"ratio,omitempty"`
	// PredictedCostNs is the per-invocation cost change vs the baseline
	// implied by the fitted model (equation 2); omitted when the fit
	// did not resolve.
	PredictedCostNs *float64 `json:"predicted_cost_ns,omitempty"`
	// Rank orders the sound candidates by measured performance
	// (1 = best); unsound candidates carry rank 0.
	Rank int `json:"rank,omitempty"`
}

// Report is the optimizer's final output.  It contains no wall-clock or
// host-dependent fields: the same normalised spec and seed yield
// byte-identical CanonicalJSON wherever the cells were executed.
type Report struct {
	Version string `json:"version"`
	Spec    Spec   `json:"spec"`
	// SensitivityK is the scoring workload's fitted sensitivity to the
	// instrumented path, with its relative standard error (percent).
	SensitivityK  float64     `json:"sensitivity_k"`
	KRelErrPct    *float64    `json:"k_rel_err_pct,omitempty"`
	FitPoints     []fit.Point `json:"fit_points,omitempty"`
	Candidates    []CandidateReport `json:"candidates"`
	Best          string            `json:"best,omitempty"`
	Unsound       int               `json:"unsound"`
	CellsExecuted int               `json:"cells_executed"`
}

// CanonicalJSON renders the report in its canonical byte form: indented
// JSON with sorted object keys (Go marshals map keys sorted; struct fields
// follow declaration order) and a trailing newline.
func (r *Report) CanonicalJSON() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SoundNames extracts the set of candidates whose gate cells passed every
// shape, from a results map keyed by cell name.
func SoundNames(sp Spec, results map[string]CellResult) (map[string]bool, error) {
	cands, err := sp.Candidates()
	if err != nil {
		return nil, err
	}
	sound := make(map[string]bool, len(cands))
	for _, c := range cands {
		res, ok := results["gate/"+c.Name]
		if !ok {
			return nil, fmt.Errorf("optimize: missing gate result for %s", c.Name)
		}
		ok = len(res.Gate) > 0
		for _, g := range res.Gate {
			ok = ok && g.Sound
		}
		if ok {
			sound[c.Name] = true
		}
	}
	return sound, nil
}

// Assemble computes the final report from the collected cell results.  sp
// must be the normalised spec the cells were built from.
func Assemble(sp Spec, results map[string]CellResult) (*Report, error) {
	cands, err := sp.Candidates()
	if err != nil {
		return nil, err
	}
	sound, err := SoundNames(sp, results)
	if err != nil {
		return nil, err
	}
	if !sound[sp.Baseline] {
		return nil, fmt.Errorf("optimize: baseline strategy %q was rejected by the soundness gate", sp.Baseline)
	}
	baseRes, ok := results["measure/"+sp.Baseline]
	if !ok || baseRes.Perf == nil {
		return nil, fmt.Errorf("optimize: missing baseline measurement for %q", sp.Baseline)
	}
	base := *baseRes.Perf

	rep := &Report{
		Version:       ReportVersion,
		Spec:          sp,
		CellsExecuted: len(results),
	}

	// Fit the workload's sensitivity to the instrumented path from the
	// cost-injection cells.
	var pts []fit.Point
	for _, a := range sp.FitCosts {
		res, ok := results[Cell{Kind: "fit", CostNs: a}.Name()]
		if !ok || res.Perf == nil {
			return nil, fmt.Errorf("optimize: missing fit measurement at cost %d", a)
		}
		if base.GeoMean > 0 {
			pts = append(pts, fit.Point{A: float64(a), P: res.Perf.GeoMean / base.GeoMean})
		}
	}
	rep.FitPoints = pts
	var k float64
	if sens, err := fit.FitSensitivity(pts); err == nil && isFinite(sens.K) {
		k = sens.K
		rep.SensitivityK = sens.K
		if re := sens.RelErr() * 100; isFinite(re) {
			re = math.Round(re*100) / 100
			rep.KRelErrPct = &re
		}
	}

	// Per-candidate verdicts, in enumeration order for now.
	byName := map[string]*CandidateReport{}
	for _, c := range cands {
		cr := CandidateReport{
			Name:  c.Name,
			Spec:  c.Encoding(),
			Sound: sound[c.Name],
			Gate:  results["gate/"+c.Name].Gate,
		}
		if cr.Sound {
			res, ok := results["measure/"+c.Name]
			if !ok || res.Perf == nil {
				return nil, fmt.Errorf("optimize: missing measurement for sound candidate %q", c.Name)
			}
			cr.Perf = res.Perf
			cr.Ratio = roundRatio(stats.Compare(*res.Perf, base).Ratio)
			if k > 0 {
				if cost := fit.CostIncrease(k, cr.Ratio); isFinite(cost) {
					cost = math.Round(cost*1000) / 1000
					cr.PredictedCostNs = &cost
				}
			}
		} else {
			rep.Unsound++
		}
		rep.Candidates = append(rep.Candidates, cr)
		byName[c.Name] = &rep.Candidates[len(rep.Candidates)-1]
	}

	// Rank: sound candidates by measured performance (geometric mean,
	// descending; name as the deterministic tiebreak), unsound after in
	// enumeration order.
	order := make([]*CandidateReport, len(rep.Candidates))
	for i := range rep.Candidates {
		order[i] = &rep.Candidates[i]
	}
	sort.SliceStable(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if a.Sound != b.Sound {
			return a.Sound
		}
		if !a.Sound {
			return false // keep enumeration order among unsound
		}
		if a.Perf.GeoMean != b.Perf.GeoMean {
			return a.Perf.GeoMean > b.Perf.GeoMean
		}
		return a.Name < b.Name
	})
	ranked := make([]CandidateReport, len(order))
	for i, cr := range order {
		if cr.Sound {
			cr.Rank = i + 1
			if i == 0 {
				rep.Best = cr.Name
			}
		}
		ranked[i] = *cr
	}
	rep.Candidates = ranked
	return rep, nil
}

// roundRatio quantises a performance ratio to 6 decimal places so the
// canonical report does not depend on float printing at full precision.
func roundRatio(r float64) float64 {
	return math.Round(r*1e6) / 1e6
}

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// Run executes the whole optimizer job in-process: gate wave, then scoring
// wave, then assembly.  The engine's distributed path executes the same
// cells through the dispatcher and must produce a byte-identical report.
func Run(spec Spec) (*Report, error) {
	sp := spec.WithDefaults()
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	results := map[string]CellResult{}
	gates, err := sp.GateCells()
	if err != nil {
		return nil, err
	}
	for _, c := range gates {
		res, err := RunCell(c)
		if err != nil {
			return nil, err
		}
		results[res.Cell] = res
	}
	sound, err := SoundNames(sp, results)
	if err != nil {
		return nil, err
	}
	score, err := sp.ScoreCells(sound)
	if err != nil {
		return nil, err
	}
	for _, c := range score {
		res, err := RunCell(c)
		if err != nil {
			return nil, err
		}
		results[res.Cell] = res
	}
	return Assemble(sp, results)
}
