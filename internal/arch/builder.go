package arch

import "fmt"

// Builder assembles a Program.  It resolves symbolic labels to instruction
// indices and tags every emitted instruction with the current code-path
// site, so that higher layers (platform code generators, the cost-function
// injector) can attribute instructions to the paper's "code paths".
//
// The zero value is not usable; construct with NewBuilder.
type Builder struct {
	code   []Instr
	labels map[string]int
	fixups []fixup
	site   PathID
	err    error
}

type fixup struct {
	index int
	label string
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// SetSite sets the code-path site recorded on subsequently emitted
// instructions.  It returns the previous site so callers can nest scopes.
func (b *Builder) SetSite(p PathID) PathID {
	old := b.site
	b.site = p
	return old
}

// Site returns the current code-path site.
func (b *Builder) Site() PathID { return b.site }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

func (b *Builder) emit(in Instr) *Builder {
	in.Site = b.site
	b.code = append(b.code, in)
	return b
}

// Label defines label name at the current position.  Redefinition is an
// error reported by Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("label %q redefined", name)
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: Nop}) }

// Nops emits n no-ops.
func (b *Builder) Nops(n int) *Builder {
	for i := 0; i < n; i++ {
		b.Nop()
	}
	return b
}

// MovImm emits rd = imm.
func (b *Builder) MovImm(rd Reg, imm int64) *Builder {
	return b.emit(Instr{Op: MovImm, Rd: rd, Imm: imm})
}

// Mov emits rd = rn.
func (b *Builder) Mov(rd, rn Reg) *Builder {
	return b.emit(Instr{Op: Mov, Rd: rd, Rn: rn})
}

// Add emits rd = rn + rm.
func (b *Builder) Add(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Add, Rd: rd, Rn: rn, Rm: rm})
}

// Sub emits rd = rn - rm.
func (b *Builder) Sub(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Sub, Rd: rd, Rn: rn, Rm: rm})
}

// And emits rd = rn & rm.
func (b *Builder) And(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: And, Rd: rd, Rn: rn, Rm: rm})
}

// Orr emits rd = rn | rm.
func (b *Builder) Orr(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Orr, Rd: rd, Rn: rn, Rm: rm})
}

// Eor emits rd = rn ^ rm.
func (b *Builder) Eor(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Eor, Rd: rd, Rn: rn, Rm: rm})
}

// Mul emits rd = rn * rm.
func (b *Builder) Mul(rd, rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Mul, Rd: rd, Rn: rn, Rm: rm})
}

// AddImm emits rd = rn + imm.
func (b *Builder) AddImm(rd, rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: AddImm, Rd: rd, Rn: rn, Imm: imm})
}

// SubImm emits rd = rn - imm.
func (b *Builder) SubImm(rd, rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: SubImm, Rd: rd, Rn: rn, Imm: imm})
}

// Lsl emits rd = rn << imm.
func (b *Builder) Lsl(rd, rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: Lsl, Rd: rd, Rn: rn, Imm: imm})
}

// Lsr emits rd = rn >> imm (logical).
func (b *Builder) Lsr(rd, rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: Lsr, Rd: rd, Rn: rn, Imm: imm})
}

// SubsImm emits rd = rn - imm, setting the condition flags.
func (b *Builder) SubsImm(rd, rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: SubsImm, Rd: rd, Rn: rn, Imm: imm})
}

// CmpImm emits a flag-setting compare of rn against imm.
func (b *Builder) CmpImm(rn Reg, imm int64) *Builder {
	return b.emit(Instr{Op: CmpImm, Rn: rn, Imm: imm})
}

// Cmp emits a flag-setting compare of rn against rm.
func (b *Builder) Cmp(rn, rm Reg) *Builder {
	return b.emit(Instr{Op: Cmp, Rn: rn, Rm: rm})
}

// Load emits rd = mem[rn + off].
func (b *Builder) Load(rd, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: Load, Rd: rd, Rn: rn, Imm: off})
}

// Store emits mem[rn + off] = rd.
func (b *Builder) Store(rd, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: Store, Rd: rd, Rn: rn, Imm: off})
}

// LoadAcq emits a load-acquire of mem[rn + off] into rd.
func (b *Builder) LoadAcq(rd, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: LoadAcq, Rd: rd, Rn: rn, Imm: off})
}

// StoreRel emits a store-release of rd to mem[rn + off].
func (b *Builder) StoreRel(rd, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: StoreRel, Rd: rd, Rn: rn, Imm: off})
}

// LoadEx emits a load-exclusive of mem[rn + off] into rd.
func (b *Builder) LoadEx(rd, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: LoadEx, Rd: rd, Rn: rn, Imm: off})
}

// StoreEx emits a store-exclusive of rm to mem[rn + off]; rd receives 0 on
// success, 1 on failure.
func (b *Builder) StoreEx(rd, rm, rn Reg, off int64) *Builder {
	return b.emit(Instr{Op: StoreEx, Rd: rd, Rm: rm, Rn: rn, Imm: off})
}

func (b *Builder) branch(op Op, label string) *Builder {
	b.fixups = append(b.fixups, fixup{index: len(b.code), label: label})
	return b.emit(Instr{Op: op})
}

// B emits an unconditional branch to label.
func (b *Builder) B(label string) *Builder { return b.branch(B, label) }

// Beq emits a branch-if-equal to label.
func (b *Builder) Beq(label string) *Builder { return b.branch(Beq, label) }

// Bne emits a branch-if-not-equal to label.
func (b *Builder) Bne(label string) *Builder { return b.branch(Bne, label) }

// Blt emits a branch-if-less-than to label.
func (b *Builder) Blt(label string) *Builder { return b.branch(Blt, label) }

// Bge emits a branch-if-greater-or-equal to label.
func (b *Builder) Bge(label string) *Builder { return b.branch(Bge, label) }

// Fence emits a memory barrier of the given kind.
func (b *Builder) Fence(kind BarrierKind) *Builder {
	if kind == BarrierNone {
		return b.Nop()
	}
	return b.emit(Instr{Op: Barrier, Kind: kind})
}

// Work emits a marker retiring units of application work.
func (b *Builder) Work(units int64) *Builder {
	return b.emit(Instr{Op: Work, Imm: units})
}

// Halt emits the thread-terminating instruction.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: Halt}) }

// Append copies prog into the instruction stream, preserving the copied
// instructions' own code-path sites and relocating their branch targets.
func (b *Builder) Append(prog Program) *Builder {
	base := int32(len(b.code))
	for _, in := range prog.Code {
		if in.Op.IsBranch() {
			in.Target += base
		}
		b.code = append(b.code, in)
	}
	return b
}

// Err returns the first error recorded while building, if any.
func (b *Builder) Err() error { return b.err }

// Build resolves labels and returns the assembled Program.
func (b *Builder) Build() (Program, error) {
	if b.err != nil {
		return Program{}, b.err
	}
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return Program{}, fmt.Errorf("undefined label %q", f.label)
		}
		b.code[f.index].Target = int32(target)
	}
	code := make([]Instr, len(b.code))
	copy(code, b.code)
	return Program{Code: code}, nil
}

// MustBuild is Build, panicking on error.  It is intended for tests and
// examples over statically known-correct programs; production call paths
// use Build and propagate the error (a panic here would otherwise ride a
// goroutine stack into the engine's recovery machinery instead of a
// plain error return).
func (b *Builder) MustBuild() Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
