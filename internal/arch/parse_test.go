package arch

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	src := `
; message-passing writer with a store barrier
	movimm r0, #1
	str    r0, [r1, #0]
	dmb    ishst
	str    r0, [r1, #64]
loop:
	subsimm r0, r0, #1
	bne    loop
	work   #1
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{MovImm, Store, Barrier, Store, SubsImm, Bne, Work, Halt}
	if len(p.Code) != len(want) {
		t.Fatalf("parsed %d instructions, want %d", len(p.Code), len(want))
	}
	for i, op := range want {
		if p.Code[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, p.Code[i].Op, op)
		}
	}
	if p.Code[2].Kind != DMBIshSt {
		t.Errorf("barrier kind %v", p.Code[2].Kind)
	}
	if p.Code[5].Target != 4 {
		t.Errorf("branch target %d", p.Code[5].Target)
	}
	if p.Code[1].Imm != 0 || p.Code[3].Imm != 64 {
		t.Error("store offsets wrong")
	}
}

func TestParseAllForms(t *testing.T) {
	src := `
	mov    r2, r3
	add    r0, r1, r2
	sub    r0, r1, r2
	and    r0, r1, r2
	orr    r0, r1, r2
	eor    r0, r1, r2
	mul    r0, r1, r2
	addimm r0, r1, #8
	subimm r0, r1, #8
	lsl    r0, r1, #3
	lsr    r0, r1, #3
	cmp    r1, r2
	cmpimm r1, #42
	ldr    r3, [r1]
	ldar   r3, [r1, #8]
	ldxr   r3, [r1, #16]
	stlr   r3, [r1, #24]
	stxr   r4, r5, [r1, #32]
	lwsync
	hwsync
	isb
	dmb    ish
	dmb    ishld
	nop
end:
	b      end
	beq    end
	blt    end
	bge    end
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 29 {
		t.Errorf("parsed %d instructions", p.Len())
	}
	// stxr operand order: status, value, address.
	var stxr *Instr
	for i := range p.Code {
		if p.Code[i].Op == StoreEx {
			stxr = &p.Code[i]
		}
	}
	if stxr == nil || stxr.Rd != 4 || stxr.Rm != 5 || stxr.Rn != 1 || stxr.Imm != 32 {
		t.Errorf("stxr parsed as %+v", stxr)
	}
}

func TestParseAliases(t *testing.T) {
	p, err := Parse("movimm sp, #100\nmovimm lr, #200\nmov r0, xzr\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Rd != SP || p.Code[1].Rd != LR || p.Code[2].Rn != ZR {
		t.Error("register aliases wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ src, wantErr string }{
		{"frobnicate r1", "unknown mnemonic"},
		{"bne nowhere\nhalt", "undefined label"},
		{"movimm r99, #1", "bad register"},
		{"movimm r1, #xyz", "bad immediate"},
		{"dmb osh", "unknown dmb domain"},
		{"add r0, r1", "missing operand"},
		{"ldr r0, [r1, #8", "unterminated address"},
		{":", "empty label"},
	}
	for _, c := range cases {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("Parse(%q) error = %v, want containing %q", c.src, err, c.wantErr)
		}
	}
}

func TestParseCommentsAndBlank(t *testing.T) {
	p, err := Parse("; nothing\n\n// also nothing\nnop ; trailing\nhalt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Errorf("parsed %d instructions, want 2", p.Len())
	}
}
