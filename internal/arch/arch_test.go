package arch

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpPredicates(t *testing.T) {
	cases := []struct {
		op                  Op
		load, store, branch bool
	}{
		{Load, true, false, false},
		{LoadAcq, true, false, false},
		{LoadEx, true, false, false},
		{Store, false, true, false},
		{StoreRel, false, true, false},
		{StoreEx, false, true, false},
		{B, false, false, true},
		{Beq, false, false, true},
		{Bge, false, false, true},
		{Add, false, false, false},
		{Barrier, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store || c.op.IsBranch() != c.branch {
			t.Errorf("%v: predicates load=%v store=%v branch=%v", c.op, c.op.IsLoad(), c.op.IsStore(), c.op.IsBranch())
		}
		if c.op.IsMem() != (c.load || c.store) {
			t.Errorf("%v: IsMem inconsistent", c.op)
		}
	}
	if B.IsCondBranch() {
		t.Error("B is not conditional")
	}
	if !Bne.IsCondBranch() {
		t.Error("Bne is conditional")
	}
}

func TestBarrierOrderings(t *testing.T) {
	cases := []struct {
		k          BarrierKind
		ll, ss, sl bool
	}{
		{DMBIsh, true, true, true},
		{DMBIshLd, true, false, false},
		{DMBIshSt, false, true, false},
		{ISB, true, false, false},
		{LwSync, true, true, false},
		{HwSync, true, true, true},
	}
	for _, c := range cases {
		if c.k.OrdersLoadLoad() != c.ll || c.k.OrdersStoreStore() != c.ss || c.k.OrdersStoreLoad() != c.sl {
			t.Errorf("%v: orderings ll=%v ss=%v sl=%v", c.k,
				c.k.OrdersLoadLoad(), c.k.OrdersStoreStore(), c.k.OrdersStoreLoad())
		}
	}
}

func TestInstrReadsWrites(t *testing.T) {
	var buf [3]Reg
	in := Instr{Op: Store, Rd: 5, Rn: 6}
	reads := in.Reads(buf[:0])
	if len(reads) != 2 || reads[0] != 6 || reads[1] != 5 {
		t.Errorf("Store reads %v", reads)
	}
	if _, ok := in.Writes(); ok {
		t.Error("Store writes no register")
	}
	in = Instr{Op: StoreEx, Rd: 2, Rn: 3, Rm: 4}
	reads = in.Reads(buf[:0])
	if len(reads) != 2 || reads[0] != 3 || reads[1] != 4 {
		t.Errorf("StoreEx reads %v", reads)
	}
	if rd, ok := in.Writes(); !ok || rd != 2 {
		t.Error("StoreEx writes its status register")
	}
	if !(Instr{Op: SubsImm}).SetsFlags() || (Instr{Op: SubImm}).SetsFlags() {
		t.Error("flag-setting predicates wrong")
	}
	if !(Instr{Op: Blt}).ReadsFlags() || (Instr{Op: B}).ReadsFlags() {
		t.Error("flag-reading predicates wrong")
	}
}

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.MovImm(0, 1)
	b.Bne("top")
	b.B("end")
	b.Nop()
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[1].Target != 0 {
		t.Errorf("Bne target = %d, want 0", p.Code[1].Target)
	}
	if p.Code[2].Target != 4 {
		t.Errorf("B target = %d, want 4", p.Code[2].Target)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.B("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("expected undefined-label error, got %v", err)
	}
	b = NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("expected redefinition error, got %v", err)
	}
	if b.Err() == nil {
		t.Error("Err should report the recorded failure")
	}
}

func TestBuilderAppendRelocates(t *testing.T) {
	inner := NewBuilder()
	inner.Label("l")
	inner.SubsImm(0, 0, 1)
	inner.Bne("l")
	ip := inner.MustBuild()

	outer := NewBuilder()
	outer.Nop()
	outer.Nop()
	outer.Append(ip)
	p := outer.MustBuild()
	if p.Code[3].Target != 2 {
		t.Errorf("appended branch target = %d, want 2", p.Code[3].Target)
	}
}

func TestBuilderSiteTagging(t *testing.T) {
	b := NewBuilder()
	old := b.SetSite(5)
	if old != PathNone {
		t.Errorf("initial site = %d", old)
	}
	b.Nop()
	b.SetSite(old)
	b.Nop()
	p := b.MustBuild()
	if p.Code[0].Site != 5 || p.Code[1].Site != PathNone {
		t.Errorf("site tags: %d %d", p.Code[0].Site, p.Code[1].Site)
	}
}

func TestProfileValidation(t *testing.T) {
	for name, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	bad := ARMv8()
	bad.LineWords = 3
	if bad.Validate() == nil {
		t.Error("non-power-of-two line size should fail validation")
	}
	bad = ARMv8()
	bad.FreqGHz = 0
	if bad.Validate() == nil {
		t.Error("zero frequency should fail validation")
	}
	bad = POWER7()
	bad.Lat.PropMax = bad.Lat.PropMin - 1
	if bad.Validate() == nil {
		t.Error("inverted propagation bounds should fail validation")
	}
}

func TestCycleNsRoundTrip(t *testing.T) {
	p := ARMv8()
	f := func(raw uint32) bool {
		cycles := int64(raw % 1_000_000)
		ns := p.CyclesToNs(cycles)
		back := p.NsToCycles(ns)
		diff := back - cycles
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if DMBIsh.String() != "dmb ish" || HwSync.String() != "hwsync" {
		t.Error("barrier names wrong")
	}
	if Load.String() != "ldr" || StoreEx.String() != "stxr" {
		t.Error("op names wrong")
	}
	in := Instr{Op: Load, Rd: 2, Rn: 1, Imm: 8}
	if !strings.Contains(in.String(), "ldr r2, [r1, #8]") {
		t.Errorf("instr string: %s", in.String())
	}
	if MCA.String() != "mca" || NonMCA.String() != "non-mca" {
		t.Error("flavor names wrong")
	}
}
