package arch

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse assembles a textual program into a Program.  The syntax is one
// instruction per line using the mnemonics of this package:
//
//	; comment (also //)
//	label:
//	movimm r2, #100
//	add    r0, r1, r2
//	addimm r0, r1, #8
//	ldr    r3, [r1, #16]
//	str    r3, [r1, #24]
//	ldar   r3, [r1]
//	stxr   r4, r5, [r1, #0]     ; status, value, address
//	cmpimm r3, #0
//	bne    loop
//	dmb    ish | ishld | ishst
//	lwsync / hwsync / isb
//	work   #1
//	halt
//
// Registers are r0..r31 (sp and lr are aliases for r31 and r30).  It is
// the inverse of the Builder API, intended for the wmmasm tool and tests.
func Parse(src string) (Program, error) {
	b := NewBuilder()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return Program{}, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
	}
	return b.Build()
}

func parseLine(b *Builder, line string) error {
	if strings.HasSuffix(line, ":") {
		name := strings.TrimSuffix(line, ":")
		if name == "" {
			return fmt.Errorf("empty label")
		}
		b.Label(name)
		return nil
	}
	fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
	op := strings.ToLower(fields[0])
	args := fields[1:]

	reg := func(i int) (Reg, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing operand %d", op, i+1)
		}
		return parseReg(args[i])
	}
	imm := func(i int) (int64, error) {
		if i >= len(args) {
			return 0, fmt.Errorf("%s: missing immediate", op)
		}
		return parseImm(args[i])
	}
	// mem parses the two tokens of a "[rN, #imm]" or "[rN]" operand,
	// which the field splitter has broken apart.
	mem := func(i int) (Reg, int64, error) {
		if i >= len(args) {
			return 0, 0, fmt.Errorf("%s: missing address", op)
		}
		tok := strings.TrimPrefix(args[i], "[")
		if strings.HasSuffix(tok, "]") { // [rN]
			r, err := parseReg(strings.TrimSuffix(tok, "]"))
			return r, 0, err
		}
		r, err := parseReg(tok)
		if err != nil {
			return 0, 0, err
		}
		if i+1 >= len(args) || !strings.HasSuffix(args[i+1], "]") {
			return 0, 0, fmt.Errorf("%s: unterminated address", op)
		}
		off, err := parseImm(strings.TrimSuffix(args[i+1], "]"))
		return r, off, err
	}

	switch op {
	case "nop":
		b.Nop()
	case "halt":
		b.Halt()
	case "isb":
		b.Fence(ISB)
	case "lwsync":
		b.Fence(LwSync)
	case "hwsync", "sync":
		b.Fence(HwSync)
	case "dmb":
		if len(args) != 1 {
			return fmt.Errorf("dmb needs a domain (ish/ishld/ishst)")
		}
		switch strings.ToLower(args[0]) {
		case "ish":
			b.Fence(DMBIsh)
		case "ishld":
			b.Fence(DMBIshLd)
		case "ishst":
			b.Fence(DMBIshSt)
		default:
			return fmt.Errorf("unknown dmb domain %q", args[0])
		}
	case "work":
		n, err := imm(0)
		if err != nil {
			return err
		}
		b.Work(n)
	case "movimm", "mov":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		if len(args) > 1 && strings.HasPrefix(args[1], "#") {
			v, err := imm(1)
			if err != nil {
				return err
			}
			b.MovImm(rd, v)
		} else {
			rn, err := reg(1)
			if err != nil {
				return err
			}
			b.Mov(rd, rn)
		}
	case "add", "sub", "and", "orr", "eor", "mul", "cmp":
		r0, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		if op == "cmp" {
			b.Cmp(r0, r1)
			return nil
		}
		r2, err := reg(2)
		if err != nil {
			return err
		}
		switch op {
		case "add":
			b.Add(r0, r1, r2)
		case "sub":
			b.Sub(r0, r1, r2)
		case "and":
			b.And(r0, r1, r2)
		case "orr":
			b.Orr(r0, r1, r2)
		case "eor":
			b.Eor(r0, r1, r2)
		case "mul":
			b.Mul(r0, r1, r2)
		}
	case "addimm", "subimm", "lsl", "lsr", "subsimm":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, err := reg(1)
		if err != nil {
			return err
		}
		v, err := imm(2)
		if err != nil {
			return err
		}
		switch op {
		case "addimm":
			b.AddImm(rd, rn, v)
		case "subimm":
			b.SubImm(rd, rn, v)
		case "lsl":
			b.Lsl(rd, rn, v)
		case "lsr":
			b.Lsr(rd, rn, v)
		case "subsimm":
			b.SubsImm(rd, rn, v)
		}
	case "cmpimm":
		rn, err := reg(0)
		if err != nil {
			return err
		}
		v, err := imm(1)
		if err != nil {
			return err
		}
		b.CmpImm(rn, v)
	case "ldr", "ldar", "ldxr":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rn, off, err := mem(1)
		if err != nil {
			return err
		}
		switch op {
		case "ldr":
			b.Load(rd, rn, off)
		case "ldar":
			b.LoadAcq(rd, rn, off)
		case "ldxr":
			b.LoadEx(rd, rn, off)
		}
	case "str", "stlr":
		rs, err := reg(0)
		if err != nil {
			return err
		}
		rn, off, err := mem(1)
		if err != nil {
			return err
		}
		if op == "str" {
			b.Store(rs, rn, off)
		} else {
			b.StoreRel(rs, rn, off)
		}
	case "stxr":
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rm, err := reg(1)
		if err != nil {
			return err
		}
		rn, off, err := mem(2)
		if err != nil {
			return err
		}
		b.StoreEx(rd, rm, rn, off)
	case "b", "beq", "bne", "blt", "bge":
		if len(args) != 1 {
			return fmt.Errorf("%s needs a label", op)
		}
		switch op {
		case "b":
			b.B(args[0])
		case "beq":
			b.Beq(args[0])
		case "bne":
			b.Bne(args[0])
		case "blt":
			b.Blt(args[0])
		case "bge":
			b.Bge(args[0])
		}
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

func parseReg(s string) (Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "sp":
		return SP, nil
	case "lr":
		return LR, nil
	case "zr", "xzr":
		return ZR, nil
	}
	if !strings.HasPrefix(s, "r") && !strings.HasPrefix(s, "x") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int64, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "#")
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}
