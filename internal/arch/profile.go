package arch

import "fmt"

// MemFlavor selects the storage-subsystem semantics of a profile.
type MemFlavor uint8

const (
	// MCA is an other-multi-copy-atomic storage subsystem (ARMv8): when a
	// store leaves its core's store buffer it becomes visible to all other
	// cores at once.  Observable weakness then comes from store buffers
	// (with forwarding and out-of-order drain) and from loads being
	// satisfied out of program order in the issue window.
	MCA MemFlavor = iota
	// NonMCA is a non-multi-copy-atomic storage subsystem (POWER): a
	// committed store propagates to each other core independently, so two
	// observers can see two writers' stores in different orders (IRIW).
	NonMCA
)

// String returns a short name for the flavor.
func (f MemFlavor) String() string {
	if f == MCA {
		return "mca"
	}
	return "non-mca"
}

// Latencies collects the timing parameters of a profile, all in core cycles
// unless stated otherwise.  They are calibrated so that the relative costs
// the paper measures (e.g. POWER lwsync ≈ 6.1 ns vs hwsync ≈ 18.9 ns, ARM
// dmb variants indistinguishable in microbenchmarks) are reproduced; see
// EXPERIMENTS.md TXT3.
type Latencies struct {
	ALU int64 // simple integer op
	Mul int64 // integer multiply

	L1Hit  int64 // load hit in the private L1
	L2Hit  int64 // load serviced by the shared L2
	Mem    int64 // load serviced by memory
	L1Fill int64 // additional cycles to install a line after a miss

	StoreCommit int64 // pacing: cycles between successive store-buffer commits
	// StoreDrain is the time from a store reaching the store buffer until
	// it can commit: acquiring exclusive ownership of the line (RFO).
	// It is what makes store→load ordering expensive (dmb ish, hwsync
	// drain waits) and what opens the SB litmus window: loads hit in a
	// few cycles while buffered stores take tens of cycles to commit.
	StoreDrain int64
	Mispredict int64 // branch misprediction restart penalty
	ISBFlush   int64 // pipeline flush cost of isb beyond the mispredict path

	// BarrierIssue is the fixed issue cost per barrier kind, on top of
	// whatever stalls the barrier's semantics impose (store-buffer
	// drains, load-completion waits, propagation acks).
	BarrierIssue [numBarrierKinds]int64

	// AcqIssue/RelIssue are the fixed extra costs of ldar/stlr beyond a
	// plain load/store.
	AcqIssue int64
	RelIssue int64

	// PropMin/PropMax bound the per-destination propagation delay of a
	// committed store on NonMCA profiles.
	PropMin int64
	PropMax int64
	// PropTail is the per-mille probability that one destination of a
	// committed store suffers a long extra propagation delay (a line
	// stuck dirty in a remote cache).  This is what makes WRC/IRIW-style
	// disagreement observable on real non-MCA machines.
	PropTail int
}

// Pipeline collects the core micro-architecture parameters of a profile.
type Pipeline struct {
	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions issued per cycle
	RetireWidth int // instructions retired per cycle
	Window      int // reorder-window capacity
	SBDepth     int // store-buffer capacity

	// BranchPredictorBits sizes the per-core 2-bit predictor table at
	// 1<<BranchPredictorBits entries; small tables alias in macro
	// workloads, which is how the paper's ctrl-strategy micro/macro
	// divergence arises (§4.3.1).
	BranchPredictorBits uint

	// IssueJitter is the per-mille probability that a ready instruction
	// is delayed by one cycle; it models scheduling noise and SMT
	// interference and gives repeated samples their spread.
	IssueJitter int

	// NoLoadSpeculation forbids loads from issuing while an older
	// conditional branch is unresolved, turning control dependencies
	// into load-ordering ones.  It exists for the speculation ablation
	// (DESIGN.md §6); both real profiles leave it false.
	NoLoadSpeculation bool
}

// Profile describes a simulated processor: timing, pipeline shape and
// memory-model structure.
type Profile struct {
	Name    string
	FreqGHz float64 // core frequency; ns = cycles / FreqGHz
	Flavor  MemFlavor
	Lat     Latencies
	Pipe    Pipeline

	// LineWords is the cache-line size in 64-bit words (addresses are
	// word-granular); it controls false sharing.
	LineWords int
	// L1Lines is the number of lines in the direct-mapped private L1.
	L1Lines int
}

// CyclesToNs converts a cycle count to simulated nanoseconds.
func (p *Profile) CyclesToNs(cycles int64) float64 {
	return float64(cycles) / p.FreqGHz
}

// NsToCycles converts nanoseconds to cycles, rounding to nearest.
func (p *Profile) NsToCycles(ns float64) int64 {
	return int64(ns*p.FreqGHz + 0.5)
}

// Validate checks that the profile's parameters are internally consistent.
func (p *Profile) Validate() error {
	switch {
	case p.FreqGHz <= 0:
		return fmt.Errorf("profile %s: non-positive frequency", p.Name)
	case p.Pipe.Window < 2:
		return fmt.Errorf("profile %s: window must hold at least 2 instructions", p.Name)
	case p.Pipe.FetchWidth < 1 || p.Pipe.IssueWidth < 1 || p.Pipe.RetireWidth < 1:
		return fmt.Errorf("profile %s: pipeline widths must be positive", p.Name)
	case p.Pipe.SBDepth < 0:
		return fmt.Errorf("profile %s: negative store-buffer depth", p.Name)
	case p.LineWords < 1 || p.LineWords&(p.LineWords-1) != 0:
		return fmt.Errorf("profile %s: line size must be a positive power of two", p.Name)
	case p.L1Lines < 1 || p.L1Lines&(p.L1Lines-1) != 0:
		return fmt.Errorf("profile %s: L1 line count must be a positive power of two", p.Name)
	case p.Flavor == NonMCA && p.Lat.PropMax < p.Lat.PropMin:
		return fmt.Errorf("profile %s: propagation delay bounds inverted", p.Name)
	}
	return nil
}

// ARMv8 returns a profile modelled on the paper's X-Gene 1: an 8-core
// 2.4 GHz out-of-order ARMv8 with observable weak memory behaviour and
// other-multi-copy-atomic stores.
func ARMv8() *Profile {
	p := &Profile{
		Name:    "armv8",
		FreqGHz: 2.4,
		Flavor:  MCA,
		Lat: Latencies{
			ALU:         1,
			Mul:         4,
			L1Hit:       3,
			L2Hit:       14,
			Mem:         90,
			L1Fill:      2,
			StoreCommit: 3,
			StoreDrain:  14,
			Mispredict:  9,
			ISBFlush:    38,
			AcqIssue:    4,
			RelIssue:    6,
		},
		Pipe: Pipeline{
			FetchWidth:          4,
			IssueWidth:          2,
			RetireWidth:         2,
			Window:              28,
			SBDepth:             12,
			BranchPredictorBits: 7,
			IssueJitter:         18,
		},
		LineWords: 8,
		L1Lines:   512,
	}
	// Calibration (EXPERIMENTS.md TXT3): the paper could not distinguish
	// the dmb variants with microbenchmarks on the X-Gene 1; their issue
	// costs are therefore close, and the differences the macro
	// experiments expose come from the semantics (ish waits on the store
	// buffer, ishld on outstanding loads, ishst on neither).
	p.Lat.BarrierIssue[DMBIsh] = 10
	p.Lat.BarrierIssue[DMBIshLd] = 9
	p.Lat.BarrierIssue[DMBIshSt] = 8
	p.Lat.BarrierIssue[ISB] = 4 // plus ISBFlush when it retires
	return p
}

// POWER7 returns a profile modelled on the paper's 12-core 3.7 GHz POWER7
// with a non-multi-copy-atomic storage subsystem.
func POWER7() *Profile {
	p := &Profile{
		Name:    "power7",
		FreqGHz: 3.7,
		Flavor:  NonMCA,
		Lat: Latencies{
			ALU:         1,
			Mul:         4,
			L1Hit:       2,
			L2Hit:       12,
			Mem:         110,
			L1Fill:      2,
			StoreCommit: 3,
			StoreDrain:  12,
			Mispredict:  11,
			ISBFlush:    40,
			AcqIssue:    5,
			RelIssue:    7,
			PropMin:     6,
			PropMax:     64,
		},
		Pipe: Pipeline{
			FetchWidth:          4,
			IssueWidth:          2,
			RetireWidth:         2,
			Window:              32,
			SBDepth:             16,
			BranchPredictorBits: 7,
			// The POWER7 runs symmetric multithreading; the paper
			// attributes the instability of xalan on POWER to it
			// (§4.2.1).  A higher jitter models that interference.
			IssueJitter: 30,
		},
		LineWords: 16,
		L1Lines:   512,
	}
	// Calibration (EXPERIMENTS.md TXT3): basic microbenchmarking in the
	// paper puts lwsync at 6.1 ns and hwsync ("sync") at 18.9 ns at
	// 3.7 GHz, i.e. roughly 23 vs 70 cycles end to end.  The issue costs
	// below leave room for the drain/ack stalls that make up the rest.
	p.Lat.BarrierIssue[LwSync] = 23
	p.Lat.BarrierIssue[HwSync] = 70
	return p
}

// Profiles returns the two evaluation profiles keyed by the names the paper
// uses in its figures ("arm", "power").
func Profiles() map[string]*Profile {
	return map[string]*Profile{
		"arm":   ARMv8(),
		"power": POWER7(),
	}
}
