// Package arch defines the instruction set, register conventions and
// architecture profiles for the weak-memory machine simulator.
//
// The instruction set is a small RISC-style subset sufficient to express the
// code the paper studies: plain and ordered loads/stores, load-exclusive /
// store-exclusive pairs, ALU operations, conditional branches, and the
// memory barriers of the ARMv8 and POWER ISAs (dmb ish / dmb ishld /
// dmb ishst / isb and lwsync / hwsync).  Two architecture profiles are
// provided: an ARMv8-like profile modelled on the X-Gene 1 used by the
// paper, and a POWER7-like profile.  The profiles differ both in timing
// parameters and in memory-model structure (multi-copy atomicity).
package arch

import "fmt"

// Reg names a general-purpose register.  The machine has 32 integer
// registers; by convention R31 is the stack pointer and R30 the link
// register, although the simulator does not enforce any ABI.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 32

// Register aliases used throughout the code generators.
const (
	SP Reg = 31 // stack pointer
	LR Reg = 30 // link register
	ZR Reg = 29 // reads as zero by convention in generated code
)

// Op enumerates instruction opcodes.
type Op uint8

const (
	// Nop does nothing but occupies an issue slot.  Cost-function base
	// cases are padded with Nops so that code size is invariant between
	// the base case and the test case (paper §4.1).
	Nop Op = iota

	// MovImm writes Imm to Rd.
	MovImm
	// Mov copies Rn to Rd.
	Mov
	// Add/Sub/And/Orr/Eor/Mul compute Rd = Rn op Rm.
	Add
	Sub
	And
	Orr
	Eor
	Mul
	// AddImm/SubImm compute Rd = Rn op Imm.
	AddImm
	SubImm
	// Lsl/Lsr shift Rn by Imm bits into Rd.
	Lsl
	Lsr
	// SubsImm computes Rd = Rn - Imm and sets the condition flags; it is
	// the loop-counter decrement of the paper's cost function (Fig. 2).
	SubsImm
	// CmpImm sets the condition flags from Rn - Imm.
	CmpImm
	// Cmp sets the condition flags from Rn - Rm.
	Cmp

	// Load reads the 64-bit word at [Rn + Imm] into Rd.
	Load
	// Store writes Rd to the word at [Rn + Imm].
	Store
	// LoadAcq is a load-acquire (ARMv8 ldar): no later memory access may
	// be satisfied before it, and it may not be satisfied while an
	// earlier store-release from the same core is still in flight.
	LoadAcq
	// StoreRel is a store-release (ARMv8 stlr): it becomes visible only
	// after every earlier access from the same core.
	StoreRel
	// LoadEx is a load-exclusive (ldxr / lwarx); it reads the coherent
	// value and arms the exclusive monitor.
	LoadEx
	// StoreEx is a store-exclusive (stxr / stwcx.); Rd receives 0 on
	// success and 1 on failure, and the stored value is Rm with address
	// [Rn + Imm].
	StoreEx

	// B branches unconditionally to Target.
	B
	// Beq/Bne/Blt/Bge branch on the condition flags.
	Beq
	Bne
	Blt
	Bge

	// Barrier issues the memory barrier identified by Kind.
	Barrier

	// Work retires Imm abstract units of application work.  Benchmarks
	// report throughput as work units per simulated nanosecond.
	Work

	// Halt stops the executing core once the store buffer has drained.
	Halt

	numOps
)

var opNames = [numOps]string{
	Nop: "nop", MovImm: "movimm", Mov: "mov",
	Add: "add", Sub: "sub", And: "and", Orr: "orr", Eor: "eor", Mul: "mul",
	AddImm: "addimm", SubImm: "subimm", Lsl: "lsl", Lsr: "lsr",
	SubsImm: "subsimm", CmpImm: "cmpimm", Cmp: "cmp",
	Load: "ldr", Store: "str", LoadAcq: "ldar", StoreRel: "stlr",
	LoadEx: "ldxr", StoreEx: "stxr",
	B: "b", Beq: "beq", Bne: "bne", Blt: "blt", Bge: "bge",
	Barrier: "barrier", Work: "work", Halt: "halt",
}

// String returns the assembly mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsLoad reports whether the opcode reads from memory.
func (o Op) IsLoad() bool {
	return o == Load || o == LoadAcq || o == LoadEx
}

// IsStore reports whether the opcode writes to memory.
func (o Op) IsStore() bool {
	return o == Store || o == StoreRel || o == StoreEx
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() }

// IsBranch reports whether the opcode transfers control.
func (o Op) IsBranch() bool { return o == B || (o >= Beq && o <= Bge) }

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool { return o >= Beq && o <= Bge }

// BarrierKind enumerates the memory barriers the simulator implements.
type BarrierKind uint8

const (
	// BarrierNone is the zero kind; instructions other than Barrier use it.
	BarrierNone BarrierKind = iota

	// DMBIsh is the ARMv8 full data memory barrier (dmb ish): orders all
	// accesses before against all accesses after, drains the store buffer
	// and applies pending invalidations.
	DMBIsh
	// DMBIshLd is the ARMv8 load barrier (dmb ishld): orders earlier
	// loads against later loads and stores.
	DMBIshLd
	// DMBIshSt is the ARMv8 store barrier (dmb ishst): orders earlier
	// stores against later stores.
	DMBIshSt
	// ISB is the ARMv8 instruction synchronization barrier: it discards
	// all speculative work and restarts fetch, and (as a context
	// synchronization event) applies pending invalidations.
	ISB

	// LwSync is the POWER lightweight sync: orders everything except
	// store→load, with A-cumulativity for the store side.
	LwSync
	// HwSync is the POWER heavyweight sync: a full barrier that restores
	// multi-copy atomicity for the stores it covers.
	HwSync

	numBarrierKinds
)

var barrierNames = [numBarrierKinds]string{
	BarrierNone: "none",
	DMBIsh:      "dmb ish", DMBIshLd: "dmb ishld", DMBIshSt: "dmb ishst",
	ISB: "isb", LwSync: "lwsync", HwSync: "hwsync",
}

// String returns the mnemonic for the barrier kind.
func (k BarrierKind) String() string {
	if int(k) < len(barrierNames) && barrierNames[k] != "" {
		return barrierNames[k]
	}
	return fmt.Sprintf("barrier(%d)", uint8(k))
}

// OrdersLoadLoad reports whether the barrier orders earlier loads against
// later loads.
func (k BarrierKind) OrdersLoadLoad() bool {
	switch k {
	case DMBIsh, DMBIshLd, LwSync, HwSync, ISB:
		return true
	}
	return false
}

// OrdersStoreStore reports whether the barrier orders earlier stores against
// later stores.
func (k BarrierKind) OrdersStoreStore() bool {
	switch k {
	case DMBIsh, DMBIshSt, LwSync, HwSync:
		return true
	}
	return false
}

// OrdersStoreLoad reports whether the barrier orders earlier stores against
// later loads (the most expensive direction: it requires a store-buffer
// drain).
func (k BarrierKind) OrdersStoreLoad() bool {
	return k == DMBIsh || k == HwSync
}

// PathID identifies a platform code path (in the paper's sense: a location
// in the platform's code where part of the fencing strategy is implemented).
// Every generated instruction carries the PathID of the code path that
// emitted it, which the simulator uses for invocation counting and which the
// injection machinery uses to attribute cost functions.
type PathID uint16

// PathNone marks instructions that belong to no instrumented code path.
const PathNone PathID = 0

// Instr is a single machine instruction.
type Instr struct {
	Op     Op
	Rd     Reg   // destination (value source for stores)
	Rn     Reg   // first operand / base address
	Rm     Reg   // second operand / store-exclusive value
	Imm    int64 // immediate / address offset
	Target int32 // branch target (instruction index, resolved by Builder)
	Kind   BarrierKind
	Site   PathID // code path attribution
}

// String renders the instruction in a debugger-friendly form.
func (in Instr) String() string {
	switch {
	case in.Op == Barrier:
		return in.Kind.String()
	case in.Op.IsBranch():
		return fmt.Sprintf("%s -> %d", in.Op, in.Target)
	case in.Op == MovImm:
		return fmt.Sprintf("movimm r%d, #%d", in.Rd, in.Imm)
	case in.Op.IsMem():
		return fmt.Sprintf("%s r%d, [r%d, #%d]", in.Op, in.Rd, in.Rn, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d, #%d", in.Op, in.Rd, in.Rn, in.Rm, in.Imm)
	}
}

// Reads returns the registers the instruction reads.  The result is written
// into buf, which must have capacity for at least three entries, and the
// filled prefix is returned.
func (in Instr) Reads(buf []Reg) []Reg {
	buf = buf[:0]
	switch in.Op {
	case Nop, MovImm, B, Barrier, Work, Halt:
	case Mov:
		buf = append(buf, in.Rn)
	case Add, Sub, And, Orr, Eor, Mul, Cmp:
		buf = append(buf, in.Rn, in.Rm)
	case AddImm, SubImm, Lsl, Lsr, SubsImm, CmpImm:
		buf = append(buf, in.Rn)
	case Load, LoadAcq, LoadEx:
		buf = append(buf, in.Rn)
	case Store, StoreRel:
		buf = append(buf, in.Rn, in.Rd)
	case StoreEx:
		buf = append(buf, in.Rn, in.Rm)
	case Beq, Bne, Blt, Bge:
		// Condition flags are tracked separately by the simulator.
	}
	return buf
}

// Writes returns the register the instruction writes, or false if it writes
// none.
func (in Instr) Writes() (Reg, bool) {
	switch in.Op {
	case MovImm, Mov, Add, Sub, And, Orr, Eor, Mul, AddImm, SubImm, Lsl, Lsr,
		SubsImm, Load, LoadAcq, LoadEx, StoreEx:
		return in.Rd, true
	}
	return 0, false
}

// SetsFlags reports whether the instruction updates the condition flags.
func (in Instr) SetsFlags() bool {
	switch in.Op {
	case SubsImm, CmpImm, Cmp:
		return true
	}
	return false
}

// ReadsFlags reports whether the instruction reads the condition flags.
func (in Instr) ReadsFlags() bool { return in.Op.IsCondBranch() }

// Program is an executable sequence of instructions for one hardware thread.
type Program struct {
	Code []Instr
}

// Len returns the number of instructions in the program.
func (p Program) Len() int { return len(p.Code) }
