package stats

import (
	"math"
	"testing"
)

func TestStopRuleDefaults(t *testing.T) {
	r := StopRule{RelPrecision: 0.05}.WithDefaults()
	if r.MinSamples != DefaultMinSamples || r.MaxSamples != DefaultMaxSamples {
		t.Fatalf("defaults = %+v, want min %d max %d", r, DefaultMinSamples, DefaultMaxSamples)
	}
	// The floor never drops below 2 (a t interval needs two samples) and
	// the ceiling never undercuts the floor.
	r = StopRule{RelPrecision: 0.05, MinSamples: 1}.WithDefaults()
	if r.MinSamples != 2 {
		t.Errorf("MinSamples = %d, want clamped to 2", r.MinSamples)
	}
	r = StopRule{RelPrecision: 0.05, MinSamples: 10, MaxSamples: 5}.WithDefaults()
	if r.MaxSamples != 10 {
		t.Errorf("MaxSamples = %d, want raised to MinSamples", r.MaxSamples)
	}
}

func TestStopRuleValidate(t *testing.T) {
	valid := StopRule{RelPrecision: 0.05, MinSamples: 3, MaxSamples: 64}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
	for _, r := range []StopRule{
		{RelPrecision: 0},
		{RelPrecision: -0.1},
		{RelPrecision: 1.5},
		{RelPrecision: 0.05, MinSamples: -1},
		{RelPrecision: 0.05, MaxSamples: -1},
		{RelPrecision: 0.05, MinSamples: 10, MaxSamples: 5},
	} {
		if err := r.Validate(); err == nil {
			t.Errorf("rule %+v validated, want error", r)
		}
	}
}

func TestStopRuleSatisfied(t *testing.T) {
	r := StopRule{RelPrecision: 0.10, MinSamples: 3, MaxSamples: 64}
	tight := Summary{N: 5, Mean: 100, Lo: 95, Hi: 105}  // ±5%
	loose := Summary{N: 5, Mean: 100, Lo: 50, Hi: 150}  // ±50%
	early := Summary{N: 2, Mean: 100, Lo: 100, Hi: 100} // below the floor
	zero := Summary{N: 10, Mean: 0, Lo: 0, Hi: 0}       // undefined precision
	if !r.Satisfied(tight) {
		t.Error("±5% at n=5 not satisfied under a 10% target")
	}
	if r.Satisfied(loose) {
		t.Error("±50% satisfied under a 10% target")
	}
	if r.Satisfied(early) {
		t.Error("satisfied below MinSamples")
	}
	if r.Satisfied(zero) {
		t.Error("zero mean satisfied (relative precision is undefined)")
	}
	if !r.Done(Summary{N: 64, Mean: 100, Lo: 0, Hi: 200}) {
		t.Error("not done at the MaxSamples ceiling")
	}
}

func TestStopRuleNextDeterministicGrowth(t *testing.T) {
	r := StopRule{RelPrecision: 0.05, MinSamples: 3, MaxSamples: 20}
	var schedule []int
	for n := r.MinSamples; n < r.MaxSamples; n = r.Next(n) {
		schedule = append(schedule, n)
		if len(schedule) > 32 {
			t.Fatal("growth schedule does not converge")
		}
	}
	want := []int{3, 4, 6, 9, 13, 19}
	if len(schedule) != len(want) {
		t.Fatalf("schedule %v, want %v", schedule, want)
	}
	for i := range want {
		if schedule[i] != want[i] {
			t.Fatalf("schedule %v, want %v", schedule, want)
		}
	}
	if next := r.Next(19); next != 20 {
		t.Errorf("Next(19) = %d, want clamped to 20", next)
	}
}

// TestStopRuleRealSamples drives the rule over an actual converging
// sample stream: precision improves with n, so the rule stops, and the
// stop point is a pure function of the samples (run twice, same n).
func TestStopRuleRealSamples(t *testing.T) {
	r := StopRule{RelPrecision: 0.02}.WithDefaults()
	sample := func(i int) float64 { return 100 + 5*math.Sin(float64(i)) }
	stopAt := func() int {
		var xs []float64
		n := r.MinSamples
		for {
			for len(xs) < n {
				xs = append(xs, sample(len(xs)))
			}
			s := Summarise(xs)
			if r.Done(s) {
				return s.N
			}
			n = r.Next(n)
		}
	}
	first, second := stopAt(), stopAt()
	if first != second {
		t.Fatalf("stop point nondeterministic: %d then %d", first, second)
	}
	if first <= r.MinSamples || first >= r.MaxSamples {
		t.Logf("stopped at n=%d (bounds %d..%d)", first, r.MinSamples, r.MaxSamples)
	}
}
