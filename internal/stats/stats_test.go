package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4, 8}
	if got := Mean(xs); !almost(got, 3.75, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := GeoMean(xs); !almost(got, math.Pow(64, 0.25), 1e-9) {
		t.Errorf("GeoMean = %v", got)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty input should give 0")
	}
	// Regression: a non-positive sample used to silently return 0, which
	// call sites read as "infinitely slow".  It must poison the aggregate
	// visibly instead.
	for _, xs := range [][]float64{{1, -1}, {0}, {2, 0, 4}, {-3}} {
		if got := GeoMean(xs); !math.IsNaN(got) {
			t.Errorf("GeoMean(%v) = %v, want NaN", xs, got)
		}
	}
	// And the NaN must survive summarising and comparing rather than being
	// folded back into a finite ratio.
	bad := Summarise([]float64{1, 0, 4})
	if !math.IsNaN(bad.GeoMean) {
		t.Errorf("Summarise GeoMean = %v, want NaN", bad.GeoMean)
	}
	good := Summarise([]float64{1, 2, 4})
	if c := Compare(bad, good); !math.IsNaN(c.Ratio) {
		t.Errorf("Compare with poisoned test case: Ratio = %v, want NaN", c.Ratio)
	}
	if c := Compare(good, bad); !math.IsNaN(c.Ratio) {
		t.Errorf("Compare with poisoned base case: Ratio = %v, want NaN", c.Ratio)
	}
}

func TestPercentileScratchMatchesPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4, 9, 7}
	var scratch []float64
	for _, p := range []float64{0, 12.5, 25, 50, 75, 95, 100} {
		want := Percentile(xs, p)
		if got := PercentileScratch(xs, p, &scratch); got != want {
			t.Errorf("PercentileScratch(%v) = %v, want %v", p, got, want)
		}
	}
	if xs[0] != 5 || xs[6] != 7 {
		t.Errorf("input mutated: %v", xs)
	}
	// Steady state: reusing the scratch buffer allocates nothing.
	allocs := testing.AllocsPerRun(100, func() {
		PercentileScratch(xs, 95, &scratch)
	})
	if allocs != 0 {
		t.Errorf("PercentileScratch allocs/op = %v, want 0", allocs)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-9) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Errorf("P25 = %v", got)
	}
}

func TestTCritical(t *testing.T) {
	if got := TCritical95(1); !almost(got, 12.706, 1e-9) {
		t.Errorf("df=1: %v", got)
	}
	if got := TCritical95(5); !almost(got, 2.571, 1e-9) {
		t.Errorf("df=5: %v", got)
	}
	if got := TCritical95(1000); !almost(got, 1.96, 1e-9) {
		t.Errorf("df=1000: %v", got)
	}
	if !math.IsInf(TCritical95(0), 1) {
		t.Error("df=0 should be +inf")
	}
}

func TestSummariseInterval(t *testing.T) {
	// Six samples, as the paper uses ("six or more samples").
	xs := []float64{10, 10.5, 9.5, 10.2, 9.8, 10.0}
	s := Summarise(xs)
	if s.N != 6 {
		t.Errorf("N = %d", s.N)
	}
	if !(s.Lo < s.Mean && s.Mean < s.Hi) {
		t.Errorf("interval [%v, %v] does not bracket mean %v", s.Lo, s.Hi, s.Mean)
	}
	half := (s.Hi - s.Lo) / 2
	want := TCritical95(5) * s.StdDev / math.Sqrt(6)
	if !almost(half, want, 1e-9) {
		t.Errorf("half interval %v, want %v", half, want)
	}
}

func TestCompareCompoundsErrors(t *testing.T) {
	base := Summarise([]float64{100, 101, 99, 100, 100, 100})
	test := Summarise([]float64{90, 91, 89, 90, 90, 90})
	c := Compare(test, base)
	if !(c.Lo < c.Ratio && c.Ratio < c.Hi) {
		t.Errorf("comparative interval broken: %v", c)
	}
	if !almost(c.Ratio, 0.9, 0.01) {
		t.Errorf("ratio = %v, want ~0.9", c.Ratio)
	}
	if !c.Significant() {
		t.Error("a 10%% drop with tight samples should be significant")
	}
	// Per §4.1: comparative minimum is test minimum over base maximum.
	if !almost(c.Lo, test.Lo/base.Hi, 1e-12) {
		t.Errorf("Lo = %v, want %v", c.Lo, test.Lo/base.Hi)
	}
}

func TestCompareInsignificant(t *testing.T) {
	base := Summarise([]float64{100, 110, 90, 105, 95, 100})
	test := Summarise([]float64{99, 109, 91, 104, 96, 101})
	if c := Compare(test, base); c.Significant() {
		t.Errorf("overlapping samples reported significant: %v", c)
	}
}

// Property: the geometric mean never exceeds the arithmetic mean (AM-GM).
func TestAMGMProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Summarise intervals always bracket the mean and widen with
// variance.
func TestSummaryBracketsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsInf(x, 0) && !math.IsNaN(x) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		s := Summarise(xs)
		return s.Lo <= s.Mean+1e-9 && s.Mean <= s.Hi+1e-9 && s.Min <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsInf(x, 0) && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 100)
		p2 = math.Mod(math.Abs(p2), 100)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a, b := Percentile(xs, p1), Percentile(xs, p2)
		return a <= b+1e-9 && a >= Min(xs)-1e-9 && b <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
