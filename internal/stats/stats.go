// Package stats provides the statistical machinery the paper's methodology
// relies on (§4.1): geometric means to aggregate benchmark samples,
// Student-t 95% confidence intervals appropriate for small sample counts,
// and the compounded comparative errors used when dividing a test case by a
// base case.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs.  It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which the paper uses to reduce
// the impact of outliers when aggregating samples.  It returns 0 for empty
// input.  The geometric mean is undefined when any sample is non-positive:
// that case returns NaN so it propagates visibly through ratios and reports
// instead of masquerading as 0 (which call sites read as "infinitely slow").
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min and Max return the extrema; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) using linear
// interpolation between closest ranks.  xs is not mutated.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileScratch is Percentile using *scratch as the sorting buffer so
// hot paths avoid the per-call copy allocation.  The buffer is grown as
// needed and left in *scratch for reuse; xs is never mutated.
func PercentileScratch(xs []float64, p float64, scratch *[]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append((*scratch)[:0], xs...)
	*scratch = s
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	// Interpolate in the overflow-safe form: the difference s[hi]-s[lo]
	// can overflow for extreme spreads even when both endpoints (and the
	// result) are finite.
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// tTable95 holds two-sided 97.5% quantiles of the t-distribution for
// degrees of freedom 1..30; beyond that the normal approximation is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.960
}

// Summary describes a set of samples the way the paper reports results:
// geometric mean with a Student-t 95% confidence interval.
type Summary struct {
	N       int
	Mean    float64 // arithmetic mean
	GeoMean float64
	StdDev  float64
	Lo, Hi  float64 // 95% confidence interval around the mean
	Min     float64
	Max     float64
}

// Summarise computes a Summary of xs.
func Summarise(xs []float64) Summary {
	s := Summary{
		N:       len(xs),
		Mean:    Mean(xs),
		GeoMean: GeoMean(xs),
		StdDev:  StdDev(xs),
		Min:     Min(xs),
		Max:     Max(xs),
	}
	if len(xs) >= 2 {
		half := TCritical95(len(xs)-1) * s.StdDev / math.Sqrt(float64(len(xs)))
		s.Lo, s.Hi = s.Mean-half, s.Mean+half
	} else {
		s.Lo, s.Hi = s.Mean, s.Mean
	}
	return s
}

// String renders the summary as "mean ± half-interval".
func (s Summary) String() string {
	return fmt.Sprintf("%.5f ±%.5f (n=%d)", s.Mean, (s.Hi-s.Lo)/2, s.N)
}

// Comparative is a ratio of a test case to a base case with compounded
// error bounds, per §4.1: "comparative minimum is test case minimum divided
// by base case maximum".
type Comparative struct {
	Ratio  float64 // geometric mean of test over geometric mean of base
	Lo, Hi float64 // compounded interval
}

// Compare computes the comparative performance of test relative to base.
// Values are performance numbers where higher is better; Ratio < 1 means
// the test case is slower.
func Compare(test, base Summary) Comparative {
	c := Comparative{}
	if base.GeoMean != 0 {
		c.Ratio = test.GeoMean / base.GeoMean
	}
	if base.Hi != 0 {
		c.Lo = test.Lo / base.Hi
	}
	if base.Lo != 0 {
		c.Hi = test.Hi / base.Lo
	}
	return c
}

// Significant reports whether the comparative change excludes 1.0 (no
// change) from its compounded interval.
func (c Comparative) Significant() bool {
	return (c.Lo > 1 && c.Hi > 1) || (c.Lo < 1 && c.Hi < 1)
}

// String renders the comparative as a ratio with its interval.
func (c Comparative) String() string {
	return fmt.Sprintf("%.5f [%.5f, %.5f]", c.Ratio, c.Lo, c.Hi)
}
