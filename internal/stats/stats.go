// Package stats provides the statistical machinery the paper's methodology
// relies on (§4.1): geometric means to aggregate benchmark samples,
// Student-t 95% confidence intervals appropriate for small sample counts,
// and the compounded comparative errors used when dividing a test case by a
// base case.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs.  It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, which the paper uses to reduce
// the impact of outliers when aggregating samples.  It returns 0 for empty
// input.  The geometric mean is undefined when any sample is non-positive:
// that case returns NaN so it propagates visibly through ratios and reports
// instead of masquerading as 0 (which call sites read as "infinitely slow").
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min and Max return the extrema; both return 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) using linear
// interpolation between closest ranks.  xs is not mutated.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

// PercentileScratch is Percentile using *scratch as the sorting buffer so
// hot paths avoid the per-call copy allocation.  The buffer is grown as
// needed and left in *scratch for reuse; xs is never mutated.
func PercentileScratch(xs []float64, p float64, scratch *[]float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append((*scratch)[:0], xs...)
	*scratch = s
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	// Interpolate in the overflow-safe form: the difference s[hi]-s[lo]
	// can overflow for extreme spreads even when both endpoints (and the
	// result) are finite.
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// tTable95 holds two-sided 97.5% quantiles of the t-distribution for
// degrees of freedom 1..30; beyond that the normal approximation is used.
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% t critical value for the given
// degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(tTable95) {
		return tTable95[df-1]
	}
	return 1.960
}

// Summary describes a set of samples the way the paper reports results:
// geometric mean with a Student-t 95% confidence interval.
type Summary struct {
	N       int
	Mean    float64 // arithmetic mean
	GeoMean float64
	StdDev  float64
	Lo, Hi  float64 // 95% confidence interval around the mean
	Min     float64
	Max     float64
}

// Summarise computes a Summary of xs.
func Summarise(xs []float64) Summary {
	s := Summary{
		N:       len(xs),
		Mean:    Mean(xs),
		GeoMean: GeoMean(xs),
		StdDev:  StdDev(xs),
		Min:     Min(xs),
		Max:     Max(xs),
	}
	if len(xs) >= 2 {
		half := TCritical95(len(xs)-1) * s.StdDev / math.Sqrt(float64(len(xs)))
		s.Lo, s.Hi = s.Mean-half, s.Mean+half
	} else {
		s.Lo, s.Hi = s.Mean, s.Mean
	}
	return s
}

// String renders the summary as "mean ± half-interval".
func (s Summary) String() string {
	return fmt.Sprintf("%.5f ±%.5f (n=%d)", s.Mean, (s.Hi-s.Lo)/2, s.N)
}

// StopRule is a sequential stopping rule for adaptive sampling: keep
// drawing samples until the Student-t 95% confidence interval is tight
// relative to the mean, bounded below by MinSamples (never trust a tiny
// sample) and above by MaxSamples (never sample forever on a noisy
// point).  The rule reads only the running Summary, so a scheduler can
// apply it after every batch; because the decision is a pure function of
// the samples drawn so far — and samples are positionally seeded — two
// processes evaluating the same point stop at the same n with the same
// values.
type StopRule struct {
	// RelPrecision is the target: stop once (CI half-width)/|mean| is at
	// or below it.  Must be in (0, 1]; e.g. 0.05 stops at ±5%.
	RelPrecision float64
	// MinSamples is the floor before the precision test applies
	// (default 3; at least 2 are required for a t interval).
	MinSamples int
	// MaxSamples is the hard ceiling (default 64).  At the ceiling the
	// rule stops regardless of precision.
	MaxSamples int
}

// Default floor and ceiling used when a StopRule leaves them zero.
const (
	DefaultMinSamples = 3
	DefaultMaxSamples = 64
)

// WithDefaults returns the rule with zero bounds filled in.  Callers
// must normalise before keying caches on a rule, so that an explicit
// {0.05, 3, 64} and a defaulted {0.05, 0, 0} hash identically.
func (r StopRule) WithDefaults() StopRule {
	if r.MinSamples <= 0 {
		r.MinSamples = DefaultMinSamples
	}
	if r.MinSamples < 2 {
		r.MinSamples = 2
	}
	if r.MaxSamples <= 0 {
		r.MaxSamples = DefaultMaxSamples
	}
	if r.MaxSamples < r.MinSamples {
		r.MaxSamples = r.MinSamples
	}
	return r
}

// Validate rejects rules that cannot terminate meaningfully.
func (r StopRule) Validate() error {
	if r.RelPrecision <= 0 || r.RelPrecision > 1 {
		return fmt.Errorf("stats: rel_precision must be in (0, 1], got %g", r.RelPrecision)
	}
	if r.MinSamples < 0 || r.MaxSamples < 0 {
		return fmt.Errorf("stats: min_samples and max_samples must be >= 0")
	}
	if r.MaxSamples > 0 && r.MinSamples > r.MaxSamples {
		return fmt.Errorf("stats: min_samples %d exceeds max_samples %d", r.MinSamples, r.MaxSamples)
	}
	return nil
}

// Satisfied reports whether the summary already meets the precision
// target.  A zero mean never satisfies (relative precision is undefined
// there; only the MaxSamples ceiling ends such a point).
func (r StopRule) Satisfied(s Summary) bool {
	r = r.WithDefaults()
	if s.N < r.MinSamples {
		return false
	}
	m := math.Abs(s.Mean)
	if m == 0 {
		return false
	}
	half := (s.Hi - s.Lo) / 2
	return half/m <= r.RelPrecision
}

// Done reports whether sampling should stop: the target is met or the
// ceiling is reached.
func (r StopRule) Done(s Summary) bool {
	r = r.WithDefaults()
	return r.Satisfied(s) || s.N >= r.MaxSamples
}

// Next returns the sample count to grow to after an unsatisfied check at
// n: half again as many (at least one more), clamped to the ceiling.
// Deterministic growth keeps the batch schedule — and therefore the
// positional seeds drawn — identical wherever the measurement runs.
func (r StopRule) Next(n int) int {
	r = r.WithDefaults()
	next := n + n/2
	if next <= n {
		next = n + 1
	}
	if next > r.MaxSamples {
		next = r.MaxSamples
	}
	return next
}

// Comparative is a ratio of a test case to a base case with compounded
// error bounds, per §4.1: "comparative minimum is test case minimum divided
// by base case maximum".
type Comparative struct {
	Ratio  float64 // geometric mean of test over geometric mean of base
	Lo, Hi float64 // compounded interval
}

// Compare computes the comparative performance of test relative to base.
// Values are performance numbers where higher is better; Ratio < 1 means
// the test case is slower.
func Compare(test, base Summary) Comparative {
	c := Comparative{}
	if base.GeoMean != 0 {
		c.Ratio = test.GeoMean / base.GeoMean
	}
	if base.Hi != 0 {
		c.Lo = test.Lo / base.Hi
	}
	if base.Lo != 0 {
		c.Hi = test.Hi / base.Lo
	}
	return c
}

// Significant reports whether the comparative change excludes 1.0 (no
// change) from its compounded interval.
func (c Comparative) Significant() bool {
	return (c.Lo > 1 && c.Hi > 1) || (c.Lo < 1 && c.Hi < 1)
}

// String renders the comparative as a ratio with its interval.
func (c Comparative) String() string {
	return fmt.Sprintf("%.5f [%.5f, %.5f]", c.Ratio, c.Lo, c.Hi)
}
