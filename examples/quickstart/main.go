// Quickstart: build a weak-memory machine, watch a relaxed outcome appear,
// then measure a benchmark's sensitivity to its platform's fencing
// strategy — the library's core loop in ~80 lines.
package main

import (
	"fmt"
	"log"

	"repro/wmm"
)

func main() {
	// 1. A two-core message-passing race on the ARMv8-like machine.
	//    Without fences, the reader can observe the flag before the data:
	//    the machine is genuinely weak.
	relaxed := 0
	const trials = 400
	for seed := int64(0); seed < trials; seed++ {
		m, err := wmm.NewMachine(wmm.ARMv8(), wmm.MachineConfig{
			Cores: 2, MemWords: 1024, Seed: seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Threads race at varying alignments: each spins for a
		// seed-dependent delay before its body, as a litmus harness
		// would.
		delay := func(b *wmm.Builder, iters int64) {
			if iters <= 0 {
				return
			}
			b.MovImm(9, iters)
			b.Label("delay")
			b.SubsImm(9, 9, 1)
			b.Bne("delay")
		}
		// Writer: data = 1, then flag = 1 (no ordering).
		w := wmm.NewBuilder()
		delay(w, (seed*7)%120)
		w.MovImm(0, 1)
		w.Store(0, 1, 0)  // data at address 0
		w.Store(0, 1, 64) // flag at address 64
		w.Halt()
		// Reader: r2 = flag; r3 = data; record both.
		r := wmm.NewBuilder()
		r.Load(5, 1, 0) // warm the data line
		delay(r, (seed*13)%120)
		r.Load(2, 1, 64)
		r.Load(3, 1, 0)
		r.Store(2, 1, 128)
		r.Store(3, 1, 136)
		r.Halt()
		if err := m.LoadProgram(0, w.MustBuild()); err != nil {
			log.Fatal(err)
		}
		if err := m.LoadProgram(1, r.MustBuild()); err != nil {
			log.Fatal(err)
		}
		if _, err := m.Run(1_000_000); err != nil {
			log.Fatal(err)
		}
		if m.ReadMem(128) == 1 && m.ReadMem(136) == 0 {
			relaxed++
		}
	}
	fmt.Printf("message passing without fences: relaxed outcome %d/%d runs\n", relaxed, trials)

	// 2. How sensitive is the spark stand-in to the JVM's fencing
	//    strategy?  Sweep an injected cost function and fit the paper's
	//    model p = 1/((1-k) + k*a).
	prof := wmm.ARMv8()
	sizes := []int64{1, 8, 64, 512}
	cal, err := wmm.Calibrate(prof, sizes, 1)
	if err != nil {
		log.Fatal(err)
	}
	bench, err := wmm.JVMBenchmark("spark")
	if err != nil {
		log.Fatal(err)
	}
	res, err := wmm.SensitivityScan(wmm.ScanConfig{
		Bench:     bench,
		Env:       wmm.DefaultEnv(prof),
		CostPaths: []wmm.PathID{wmm.JVMAllBarriersPath()},
		AllPaths:  []wmm.PathID{wmm.JVMAllBarriersPath()},
		Sizes:     sizes,
		Samples:   3,
		Seed:      1,
		Cal:       cal,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spark sensitivity to all JVM barriers on %s: %v\n", prof.Name, res.Sens)
	for _, p := range res.Points {
		fmt.Printf("  cost %6.1f ns -> relative performance %.4f\n", p.Ns, p.P)
	}

	// 3. Convert a hypothetical 2%% slowdown into a per-barrier cost.
	a := wmm.CostIncrease(res.Sens.K, 0.98)
	fmt.Printf("a 2%% slowdown on spark implies ~%.1f ns extra per barrier (equation 2)\n", a)
}
