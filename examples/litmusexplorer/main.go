// litmusexplorer runs the weak-memory litmus catalogue on both simulated
// machines and prints which relaxed outcomes each architecture exhibits —
// the substrate validation behind every performance experiment, and a
// compact tour of how ARMv8 (other-multi-copy-atomic) and POWER
// (non-multi-copy-atomic) differ.
package main

import (
	"fmt"
	"log"

	"repro/wmm"
)

func main() {
	for _, prof := range []*wmm.Profile{wmm.ARMv8(), wmm.POWER7()} {
		fmt.Printf("== %s (%s stores)\n", prof.Name, prof.Flavor)
		r := &wmm.LitmusRunner{Prof: prof, Trials: 300, Seed: 7}
		for _, t := range wmm.LitmusSuite(prof.Name) {
			out, err := r.Run(t)
			if err != nil {
				log.Fatal(err)
			}
			expect := t.Expect[prof.Name]
			status := "forbidden, never observed"
			switch {
			case out.Relaxed > 0:
				status = fmt.Sprintf("observed %d/%d", out.Relaxed, out.Hits)
			case expect.String() != "forbidden":
				status = "allowed, not observed in this campaign"
			}
			fmt.Printf("  %-22s expect=%-15s %s\n", t.Name, expect, status)
		}
		fmt.Println()
	}
	fmt.Println("reading the results:")
	fmt.Println("  - MP/SB relax on both machines until fenced; lwsync leaves SB observable (no st→ld order)")
	fmt.Println("  - WRC/IRIW disagreement appears only on the non-multi-copy-atomic POWER machine")
	fmt.Println("  - ctrl does not order loads (speculation); ctrl+isb and address dependencies do")
}
