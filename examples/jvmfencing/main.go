// jvmfencing evaluates a JVM fencing-strategy decision the way §4.2.1 of
// the paper does: should ARMv8 volatiles use JDK9's load-acquire /
// store-release instructions or JDK8's dmb barriers?  And is the pending
// DMB-elimination lock patch worth it?
//
// The example measures each strategy across the benchmark suite with
// compounded confidence intervals, then uses each benchmark's fitted
// sensitivity to express the change as a per-barrier cost (equation 2).
package main

import (
	"fmt"
	"log"

	"repro/wmm"
)

func main() {
	prof := wmm.ARMv8()
	const samples = 4
	allPaths := []wmm.PathID{wmm.JVMAllBarriersPath()}

	base := wmm.DefaultEnv(prof) // JDK8: barriers for volatiles
	test := base
	test.JVMStrategy = wmm.JVMStrategyJDK9() // acq/rel volatiles

	fmt.Printf("JDK9 acq/rel vs JDK8 barriers on %s (%d samples each):\n\n", prof.Name, samples)
	fmt.Printf("%-12s %-10s %-22s %-12s %s\n", "benchmark", "ratio", "95% interval", "significant", "implied Δcost/barrier")

	sizes := []int64{1, 8, 64, 512}
	cal, err := wmm.Calibrate(prof, sizes, 1)
	if err != nil {
		log.Fatal(err)
	}

	for _, b := range wmm.JVMBenchmarks() {
		rel, err := wmm.CompareStrategies(b, base, test, allPaths, samples, 1)
		if err != nil {
			log.Fatal(err)
		}
		// Fit the benchmark's sensitivity so the strategy change can be
		// expressed in nanoseconds per barrier.
		scan, err := wmm.SensitivityScan(wmm.ScanConfig{
			Bench:     b,
			Env:       base,
			CostPaths: allPaths,
			AllPaths:  allPaths,
			Sizes:     sizes,
			Samples:   samples,
			Seed:      1,
			Cal:       cal,
		})
		if err != nil {
			log.Fatal(err)
		}
		a := wmm.CostIncrease(scan.Sens.K, rel.Ratio)
		sig := "no"
		if rel.Significant() {
			sig = "yes"
		}
		fmt.Printf("%-12s %-10.5f [%.5f, %.5f]    %-12s %+.1f ns (k=%.5f)\n",
			b.Name, rel.Ratio, rel.Lo, rel.Hi, sig, a, scan.Sens.K)
	}

	// The lock patch, under both volatile strategies (the paper's TXT5).
	fmt.Printf("\nDMB-elimination lock patch on spark:\n")
	spark, _ := wmm.JVMBenchmark("spark")
	for _, acqrel := range []bool{true, false} {
		envBase := wmm.DefaultEnv(prof)
		st := wmm.JVMStrategyJDK8()
		if acqrel {
			st = wmm.JVMStrategyJDK9()
		}
		envBase.JVMStrategy = st
		envTest := envBase
		st.LockPatch = true
		envTest.JVMStrategy = st
		rel, err := wmm.CompareStrategies(spark, envBase, envTest, allPaths, samples, 1)
		if err != nil {
			log.Fatal(err)
		}
		mode := "barriers"
		if acqrel {
			mode = "acq/rel "
		}
		fmt.Printf("  with %s volatiles: %+.2f%%  [%.5f, %.5f]\n",
			mode, 100*(rel.Ratio-1), rel.Lo, rel.Hi)
	}
	fmt.Println("\npaper's finding: the patch helps under acq/rel but regresses slightly under barriers —")
	fmt.Println("evidence of subtle interactions between acq/rel and dmb instructions (§4.2.1).")
}
