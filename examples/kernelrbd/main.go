// kernelrbd walks through the paper's §4.3.1 investigation: which
// implementation should the Linux kernel's read_barrier_depends macro use
// on ARMv8 if control-dependency ordering ever needs to be enforced?
//
// The example (1) establishes each candidate benchmark's sensitivity to
// the rbd code path (Figure 9), (2) measures the five candidate
// implementations (Figure 10), and (3) converts the measurements into
// per-invocation costs via equation (2), exposing the in-vitro/in-vivo
// divergence that is the paper's headline kernel result.
package main

import (
	"fmt"
	"log"

	"repro/wmm"
)

func main() {
	prof := wmm.ARMv8()
	const samples = 3
	sizes := []int64{1, 8, 64, 512}
	paths := wmm.KernelMacroPaths()
	rbd := wmm.KernelRBDPath()

	cal, err := wmm.Calibrate(prof, sizes, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: how sensitive is each benchmark to the rbd code path?
	// (Only sensitive benchmarks can resolve small strategy changes.)
	names := []string{"netperf_udp", "lmbench", "ebizzy"}
	fmt.Println("step 1: sensitivity of candidate benchmarks to read_barrier_depends")
	sens := map[string]wmm.Sensitivity{}
	for _, name := range names {
		b, err := wmm.KernelBenchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := wmm.SensitivityScan(wmm.ScanConfig{
			Bench:     b,
			Env:       wmm.DefaultEnv(prof),
			CostPaths: []wmm.PathID{rbd},
			AllPaths:  paths,
			Sizes:     sizes,
			Samples:   samples,
			Seed:      1,
			Cal:       cal,
		})
		if err != nil {
			log.Fatal(err)
		}
		sens[name] = res.Sens
		fmt.Printf("  %-14s %v\n", name, res.Sens)
	}

	// Step 2+3: measure each strategy and convert to per-invocation cost.
	fmt.Println("\nstep 2: relative performance and implied per-invocation cost of each strategy")
	fmt.Printf("  %-12s", "strategy")
	for _, n := range names {
		fmt.Printf("  %-22s", n)
	}
	fmt.Println()
	for _, st := range wmm.KernelStrategies()[1:] {
		fmt.Printf("  %-12s", st.Name)
		for _, name := range names {
			b, _ := wmm.KernelBenchmark(name)
			baseEnv := wmm.DefaultEnv(prof)
			env := baseEnv
			env.KernelStrategy = st
			rel, err := wmm.CompareStrategies(b, baseEnv, env, paths, samples, 1)
			if err != nil {
				log.Fatal(err)
			}
			a := wmm.CostIncrease(sens[name].K, rel.Ratio)
			fmt.Printf("  p=%.4f a=%+6.1f ns ", rel.Ratio, a)
		}
		fmt.Println()
	}
	fmt.Println("\npaper's conclusion (§4.3.1): isb is unreasonable (pipeline flush); if ordering is")
	fmt.Println("required, dmb ishld or dmb ish are the best cases — and dmb ishld is far cheaper in")
	fmt.Println("macro context than the microbenchmark estimate suggests.")
}
