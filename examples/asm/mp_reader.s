; Message-passing reader (single-shot): r2 = flag, r3 = data.
; With the writer fenced and this side using dmb ishld, (r2,r3) = (1,0)
; is forbidden; remove the barrier and race a few seeds to see it appear.
	ldr    r2, [r1, #64]
	dmb    ishld
	ldr    r3, [r1, #0]
	str    r2, [r1, #128]
	str    r3, [r1, #136]
	halt
