; Store buffering, symmetric: run two copies (-cores 2 with one file).
; Each core stores to its own slot then reads the other's; both reading 0
; is the classic SB relaxation - add "dmb ish" after the store to forbid.
; Core roles are symmetric because both run the same code against the
; same addresses; use with -cores 2 and different seeds.
	movimm r0, #1
	str    r0, [r1, #0]
	ldr    r2, [r1, #64]
	str    r2, [r1, #128]
	halt
