; Message-passing writer: data then flag, ordered by a store barrier.
; Run:  wmmasm -arch armv8 examples/asm/mp_writer.s examples/asm/mp_reader.s
; Drop the dmb to watch the reader observe the flag without the data.
	movimm r0, #1
	str    r0, [r1, #0]    ; data
	dmb    ishst
	str    r0, [r1, #64]   ; flag
	halt
