// rcu demonstrates the kernel substrate's read-copy-update machinery on
// the simulated machines: readers traverse a published structure with
// rcu_dereference while an updater republishes and reclaims behind
// synchronize_rcu grace periods — and a deliberately broken updater (no
// grace period) shows readers catching reclaimed memory, on both the
// multi-copy-atomic and the POWER-style machine.
//
// It is also a worked example of building custom concurrent programs
// against the platform layer rather than using the packaged benchmarks.
package main

import (
	"fmt"
	"log"

	"repro/internal/arch"
	"repro/internal/platform/kernel"
	"repro/internal/sim"
)

const (
	slot    = int64(0)   // published pointer
	verA    = int64(64)  // version buffer A
	verB    = int64(128) // version buffer B
	stop    = int64(256) // stop flag
	domain  = int64(512) // RCU per-CPU counters
	obsBase = int64(1024)
	live    = int64(7777)
	rounds  = 30
	readers = 3
)

func updater(k *kernel.Kernel, grace bool) arch.Program {
	b := arch.NewBuilder()
	b.MovImm(10, verA)
	b.MovImm(11, verB)
	b.MovImm(2, rounds)
	b.Label("round")
	b.MovImm(3, live)
	b.Store(3, 11, 0)           // prepare the spare buffer
	k.RCUAssign(b, 11, 1, slot) // publish it
	if grace {
		k.SynchronizeRCU(b, 5, readers)
	}
	b.MovImm(4, -1)
	b.Store(4, 10, 0) // reclaim the retired buffer
	b.Mov(6, 10)
	b.Mov(10, 11)
	b.Mov(11, 6)
	b.SubsImm(2, 2, 1)
	b.Bne("round")
	b.MovImm(7, 1)
	k.WriteOnce(b, 7, 1, stop)
	b.Halt()
	return b.MustBuild()
}

func reader(k *kernel.Kernel, cpu int) arch.Program {
	b := arch.NewBuilder()
	b.MovImm(7, 0) // violations observed
	b.MovImm(8, 0) // reads performed
	b.Label("loop")
	k.RCUReadLock(b, 5, cpu)
	k.RCUDereference(b, 3, 1, slot) // p = rcu_dereference(slot)
	b.Load(4, 3, 0)                 // v = *p (address dependency)
	k.RCUReadUnlock(b, 5, cpu)
	b.AddImm(8, 8, 1)
	b.CmpImm(4, live)
	b.Beq("ok")
	b.AddImm(7, 7, 1)
	b.Label("ok")
	k.ReadOnce(b, 6, 1, stop)
	b.CmpImm(6, 0)
	b.Beq("loop")
	b.Store(7, 1, obsBase+16*int64(cpu))
	b.Store(8, 1, obsBase+16*int64(cpu)+8)
	b.Halt()
	return b.MustBuild()
}

func run(prof *arch.Profile, grace bool, seed int64) (violations, reads int64) {
	k := kernel.New(kernel.Config{Prof: prof, Strategy: kernel.Default()})
	m, err := sim.New(prof, sim.Config{Cores: 1 + readers, MemWords: 4096, Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	m.WriteMem(slot, verA)
	m.WriteMem(verA, live)
	m.WriteMem(verB, live)
	m.SetReg(0, 1, 0)
	m.SetReg(0, 5, domain)
	if err := m.LoadProgram(0, updater(k, grace)); err != nil {
		log.Fatal(err)
	}
	for cpu := 0; cpu < readers; cpu++ {
		core := 1 + cpu
		m.SetReg(core, 1, 0)
		m.SetReg(core, 5, domain)
		if err := m.LoadProgram(core, reader(k, cpu)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := m.Run(100_000_000)
	if err != nil || !res.AllHalted {
		log.Fatalf("run failed: %v halted=%v", err, res.AllHalted)
	}
	for cpu := 0; cpu < readers; cpu++ {
		violations += m.ReadMem(obsBase + 16*int64(cpu))
		reads += m.ReadMem(obsBase + 16*int64(cpu) + 8)
	}
	return violations, reads
}

func main() {
	for _, prof := range []*arch.Profile{arch.ARMv8(), arch.POWER7()} {
		fmt.Printf("== %s\n", prof.Name)
		var v, r int64
		for seed := int64(1); seed <= 5; seed++ {
			dv, dr := run(prof, true, seed)
			v += dv
			r += dr
		}
		fmt.Printf("  with synchronize_rcu: %d reclaimed-value sightings in %d reads\n", v, r)
		v, r = 0, 0
		for seed := int64(1); seed <= 5; seed++ {
			dv, dr := run(prof, false, seed)
			v += dv
			r += dr
		}
		fmt.Printf("  without grace period: %d reclaimed-value sightings in %d reads\n", v, r)
	}
	fmt.Println("\nthe grace period is what separates republication from reclamation;")
	fmt.Println("its cost profile (smp_mb pairs + per-CPU polling) is exactly what the")
	fmt.Println("paper's macro instrumentation measures on RCU-heavy code paths.")
}
