// Package repro_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper, each regenerating the corresponding
// rows through the experiment drivers (reduced sweeps; run
// `go run ./cmd/wmmbench all` for the full-resolution evaluation recorded
// in EXPERIMENTS.md), plus microbenchmarks of the simulator substrate
// itself.
package repro_test

import (
	"io"
	"testing"

	"repro/internal/perfbench"
	"repro/wmm"
)

// benchOpts returns the reduced-sweep options used by the harness (short
// sweep, two samples per measurement) so a full `go test -bench=.` run of
// all nineteen experiments completes within go test's default 10-minute
// package budget on a laptop-class core; pass -timeout 0 for slower hosts.
// The full-resolution evaluation is `go run ./cmd/wmmbench all`.
func benchOpts() wmm.ExperimentOptions {
	return wmm.ExperimentOptions{Short: true, Samples: 2, Out: io.Discard, Seed: 1}
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := wmm.RunExperiment(name, benchOpts()); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// BenchmarkFig1 regenerates Figure 1 (example sensitivity fit).
func BenchmarkFig1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4 regenerates Figure 4 (cost-function calibration curves).
func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFig5 regenerates Figure 5 (JVM benchmark sensitivities, both
// architectures).
func BenchmarkFig5(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6 (spark per-elemental sensitivities).
func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7 (kernel macro impact ranking).
func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8 (kernel benchmark sensitivity
// ranking).
func BenchmarkFig8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9 (read_barrier_depends
// sensitivities).
func BenchmarkFig9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10 (rbd strategy comparison).
func BenchmarkFig10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTxt1 regenerates the §4.2 nop-padding measurement.
func BenchmarkTxt1(b *testing.B) { runExperiment(b, "txt1") }

// BenchmarkTxt2 regenerates the §4.2.1 StoreStore swap measurement.
func BenchmarkTxt2(b *testing.B) { runExperiment(b, "txt2") }

// BenchmarkTxt3 regenerates the §4.2.1/§4.4 barrier microbenchmarks.
func BenchmarkTxt3(b *testing.B) { runExperiment(b, "txt3") }

// BenchmarkTxt4 regenerates the §4.2.1 JDK9-vs-JDK8 comparison.
func BenchmarkTxt4(b *testing.B) { runExperiment(b, "txt4") }

// BenchmarkTxt5 regenerates the §4.2.1 lock-patch measurement.
func BenchmarkTxt5(b *testing.B) { runExperiment(b, "txt5") }

// BenchmarkTxt6 regenerates the §4.3 kernel nop-padding measurement.
func BenchmarkTxt6(b *testing.B) { runExperiment(b, "txt6") }

// BenchmarkTxt7 regenerates the §4.3.1 strategy-cost table.
func BenchmarkTxt7(b *testing.B) { runExperiment(b, "txt7") }

// BenchmarkLitmusSuite runs the weak-memory conformance campaign.
func BenchmarkLitmusSuite(b *testing.B) { runExperiment(b, "litmus") }

// ---------------------------------------------------------------------------
// Substrate microbenchmarks: raw simulator throughput, independent of the
// paper's experiments.

// BenchmarkMachineALU measures simulator throughput on a pure-ALU loop
// (reported as simulated instructions retired per wall-clock run).
func BenchmarkMachineALU(b *testing.B) {
	prog := func() wmm.Program {
		bb := wmm.NewBuilder()
		bb.MovImm(0, 1_000)
		bb.Label("loop")
		bb.AddImm(1, 1, 3)
		bb.Eor(2, 1, 1)
		bb.SubsImm(0, 0, 1)
		bb.Bne("loop")
		bb.Halt()
		return bb.MustBuild()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := wmm.NewMachine(wmm.ARMv8(), wmm.MachineConfig{Cores: 1, MemWords: 1 << 10, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := m.LoadProgram(0, prog); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Run(100_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMachineContended measures simulator throughput under four cores
// hammering a contended counter with exclusives.
func BenchmarkMachineContended(b *testing.B) {
	prog := func() wmm.Program {
		bb := wmm.NewBuilder()
		bb.MovImm(0, 200)
		bb.Label("outer")
		bb.Label("retry")
		bb.LoadEx(2, 1, 0)
		bb.AddImm(3, 2, 1)
		bb.StoreEx(4, 3, 1, 0)
		bb.CmpImm(4, 0)
		bb.Bne("retry")
		bb.SubsImm(0, 0, 1)
		bb.Bne("outer")
		bb.Halt()
		return bb.MustBuild()
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, err := wmm.NewMachine(wmm.POWER7(), wmm.MachineConfig{Cores: 4, MemWords: 1 << 10, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			if err := m.LoadProgram(c, prog); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := m.Run(10_000_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSensitivityFit measures the Levenberg-Marquardt fit itself.
func BenchmarkSensitivityFit(b *testing.B) {
	var pts []wmm.FitPoint
	for a := 1.0; a <= 16384; a *= 2 {
		pts = append(pts, wmm.FitPoint{A: a, P: wmm.SensitivityModel(0.00277, a)})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wmm.FitSensitivity(pts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSingleWorkload measures one end-to-end benchmark run (spark on
// ARMv8) — the unit of work every experiment is built from.
func BenchmarkSingleWorkload(b *testing.B) {
	bench, err := wmm.JVMBenchmark("spark")
	if err != nil {
		b.Fatal(err)
	}
	env := wmm.DefaultEnv(wmm.ARMv8())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wmm.MeasureBenchmark(bench, env, 1, int64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblations runs the design-choice ablations (store-buffer depth,
// multi-copy atomicity, speculation, fit-model form).
func BenchmarkAblations(b *testing.B) { runExperiment(b, "ablations") }

// BenchmarkCounters runs the invocation-counter survey (the §3
// methodological comparison).
func BenchmarkCounters(b *testing.B) { runExperiment(b, "counters") }

// BenchmarkJITExtension runs the §6 future-work experiment: sensitivity to
// a compiler-optimisation code path.
func BenchmarkJITExtension(b *testing.B) { runExperiment(b, "ext-jit") }

// BenchmarkC11Extension prices memory_order strength on lock-free
// structures (§6 future work).
func BenchmarkC11Extension(b *testing.B) { runExperiment(b, "ext-c11") }

// BenchmarkSim* are the simulator hot-path microbenchmarks shared with
// cmd/wmmperf (internal/perfbench): raw cycle-loop throughput, the cost of
// Machine.Reset, and a full workload sample through the machine cache.
// The cycle-loop and reset bodies must stay at 0 allocs/op — wmmperf gates
// allocation counts exactly against the checked-in BENCH_4.json baseline.
func BenchmarkSim(b *testing.B) {
	for _, pb := range perfbench.Benchmarks(testing.Short()) {
		b.Run(pb.Name, pb.Fn)
	}
}
