#!/usr/bin/env bash
# fencing-smoke.sh — three-node HA soak for the lease fencing token:
# repeatedly kill -9 the coordinator with work in flight, restart the
# victim as a standby, then freeze the final-round leader with SIGSTOP
# until a rival claims the lease and assert the thawed process refuses
# to keep serving — it must exit 3 (deposed), never write as a zombie.
# The run's canonical JSON must come out byte-identical to the same
# spec executed on an uninterrupted single-process wmmd.
#
# Unlike failover-smoke.sh (two nodes sharing one -addr), every node
# here binds its own address: a SIGSTOPped leader still holds its
# listening socket, so a shared address would block the successor's
# bind and turn the fencing scenario into a bind-retry scenario.  Each
# node executes locally (-local-slots 2, no separate workers), so the
# kills land on the process actually computing samples.
set -euo pipefail

API=(127.0.0.1:8370 127.0.0.1:8371 127.0.0.1:8372)
OPS=(127.0.0.1:8373 127.0.0.1:8374 127.0.0.1:8375)
ADDR_REF="127.0.0.1:8376"
DATA="$(mktemp -d)"
LOG="$DATA/smoke.log"
PID=("" "" "")
cleanup() {
  local p
  for p in "${PID[@]}" "${REF_PID:-}"; do
    if [ -n "$p" ]; then kill -9 "$p" 2>/dev/null || true; fi
  done
  rm -rf "$DATA"
}
trap cleanup EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmctl" ./cmd/wmmctl

# fig4 finishes and checkpoints quickly; ext-c11 keeps samples in
# flight long enough for the kill loop to interrupt it repeatedly.
SPEC='{"experiments":["fig4","ext-c11"],"short":true,"samples":2,"seed":3,"parallel":2}'
HA_FLAGS="-data $DATA/runs -store segment -ha -ha-ttl 1s -local-slots 2 -max-batch 1"

# role OPS_ADDR — "leader", "standby", or "" when the process is down
# or stopped (curl times out against a SIGSTOPped listener).
role() {
  curl -sS --max-time 2 "http://$1/readyz" 2>/dev/null \
    | sed -n 's/.*"role": *"\([a-z]*\)".*/\1/p' || true
}

start_node() { # start_node IDX
  local i=$1
  "$DATA/wmmd" $HA_FLAGS -addr "${API[$i]}" -ops-addr "${OPS[$i]}" \
    -ha-id "node-$i" >>"$DATA/node-$i.log" 2>&1 &
  PID[$i]=$!
}

# leader_idx [EXCLUDE] — poll up to 30s for any node (other than
# EXCLUDE) to report leader; prints its index.
leader_idx() {
  local exclude="${1:--1}" i
  for _ in $(seq 1 150); do
    for i in 0 1 2; do
      [ "$i" = "$exclude" ] && continue
      if [ "$(role "${OPS[$i]}")" = "leader" ]; then echo "$i"; return 0; fi
    done
    sleep 0.2
  done
  echo "fencing-smoke: no leader emerged within 30s" >&2
  for i in 0 1 2; do tail -5 "$DATA/node-$i.log" >&2 || true; done
  return 1
}

# --- Reference: the same spec, one plain process, never interrupted. --
"$DATA/wmmd" -addr "$ADDR_REF" >>"$LOG" 2>&1 &
REF_PID=$!
"$DATA/wmmctl" -server "http://$ADDR_REF" -timeout 30s ready \
  || { echo "fencing-smoke: reference wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }
RUN_REF=$("$DATA/wmmctl" -server "http://$ADDR_REF" submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_REF" -timeout 15m wait "$RUN_REF" \
  || { echo "fencing-smoke: reference run failed" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_REF" canonical "$RUN_REF" > "$DATA/ref.json"
kill -9 "$REF_PID" 2>/dev/null || true

# --- Three-node cluster over one shared segment store. ---------------
for i in 0 1 2; do start_node "$i"; done
LEAD=$(leader_idx)
CTL="$DATA/wmmctl -server http://${API[$LEAD]}"
$CTL -timeout 30s ready \
  || { echo "fencing-smoke: node-$LEAD ops says leader but API not ready" >&2; exit 1; }

RUN=$($CTL submit "$SPEC")
[ -n "$RUN" ] || { echo "fencing-smoke: no run id" >&2; exit 1; }
for _ in $(seq 1 600); do
  ST=$($CTL status "$RUN" 2>/dev/null || true)
  if echo "$ST" | grep -q '"completed": *1'; then break; fi
  sleep 0.2
done
echo "$ST" | grep -q '"completed": *1' \
  || { echo "fencing-smoke: run made no progress before the first kill" >&2; cat "$DATA/node-$LEAD.log" >&2; exit 1; }

# --- Kill loop: two rounds of kill -9 + restart-as-standby. ----------
for round in 1 2; do
  echo "fencing-smoke: round $round — kill -9 node-$LEAD (leader)"
  kill -9 "${PID[$LEAD]}"
  wait "${PID[$LEAD]}" 2>/dev/null || true
  VICTIM=$LEAD
  LEAD=$(leader_idx "$VICTIM")
  CTL="$DATA/wmmctl -server http://${API[$LEAD]}"
  $CTL -timeout 60s ready \
    || { echo "fencing-smoke: new leader node-$LEAD API not ready" >&2; cat "$DATA/node-$LEAD.log" >&2; exit 1; }
  grep -q "interrupted runs resumed" "$DATA/node-$LEAD.log" \
    || { echo "fencing-smoke: node-$LEAD promoted without replaying the store" >&2; cat "$DATA/node-$LEAD.log" >&2; exit 1; }
  start_node "$VICTIM"   # rejoin as standby for the next round
done

# --- Fencing round: freeze the leader instead of killing it. ---------
# A SIGSTOPped process holds the lease without renewing — the live-lock
# variant of a crash, and exactly the stall the fencing token exists
# for.  After a standby claims the next term, the thawed process must
# depose itself (fenced write or superseded renewal, whichever fires
# first) and exit 3, the same code a deposed leader uses everywhere.
echo "fencing-smoke: freezing node-$LEAD (leader) with SIGSTOP"
kill -STOP "${PID[$LEAD]}"
FROZEN=$LEAD
LEAD=$(leader_idx "$FROZEN")
CTL="$DATA/wmmctl -server http://${API[$LEAD]}"
$CTL -timeout 60s ready \
  || { echo "fencing-smoke: post-freeze leader node-$LEAD not ready" >&2; exit 1; }

kill -CONT "${PID[$FROZEN]}"
RC=0
wait "${PID[$FROZEN]}" || RC=$?
[ "$RC" -eq 3 ] \
  || { echo "fencing-smoke: thawed ex-leader node-$FROZEN exited $RC, want 3 (deposed)" >&2; cat "$DATA/node-$FROZEN.log" >&2; exit 1; }
grep -q "deposed" "$DATA/node-$FROZEN.log" \
  || { echo "fencing-smoke: node-$FROZEN exit 3 without a deposal log line" >&2; cat "$DATA/node-$FROZEN.log" >&2; exit 1; }
PID[$FROZEN]=""

# --- The run must still finish, correctly. ---------------------------
if ! $CTL -timeout 15m wait "$RUN"; then
  echo "fencing-smoke: run did not finish after the soak" >&2
  $CTL status "$RUN" >&2 || true
  cat "$DATA/node-$LEAD.log" >&2
  exit 1
fi
$CTL canonical "$RUN" > "$DATA/soak.json"
if ! diff -q "$DATA/ref.json" "$DATA/soak.json" >/dev/null; then
  echo "fencing-smoke: canonical JSON diverged after 2 kills + 1 freeze" >&2
  diff "$DATA/ref.json" "$DATA/soak.json" >&2 || true
  exit 1
fi

# --- Instrumentation: one scrape shows role, term and fence counts. --
METRICS=$(curl -sS --max-time 5 "http://${API[$LEAD]}/metrics")
echo "$METRICS" | grep -q '^wmm_ha_leader 1$' \
  || { echo "fencing-smoke: final leader does not export wmm_ha_leader 1" >&2; exit 1; }
TERM=$(echo "$METRICS" | sed -n 's/^wmm_ha_term \([0-9.]*\)$/\1/p')
[ -n "$TERM" ] && [ "${TERM%.*}" -ge 3 ] \
  || { echo "fencing-smoke: wmm_ha_term = '$TERM' after three takeovers, want >= 3" >&2; exit 1; }
echo "$METRICS" | grep -q '^wmm_ha_promotions_total ' \
  || { echo "fencing-smoke: wmm_ha_promotions_total missing from /metrics" >&2; exit 1; }
echo "$METRICS" | grep -q '^wmm_store_fenced_writes_total ' \
  || { echo "fencing-smoke: wmm_store_fenced_writes_total missing from /metrics" >&2; exit 1; }

echo "fencing-smoke: ok ($RUN survived 2x kill -9 + SIGSTOP takeover; frozen leader exited 3; canonical JSON identical; final term $TERM)"
