#!/usr/bin/env bash
# optimize-smoke.sh — run the same fence-strategy optimizer job on a
# plain local wmmd and on a coordinator-only wmmd served by two real
# wmmworker processes, and assert the canonical optimization report is
# byte-identical.  Then resubmit the job to the coordinator and assert
# the rerun is served entirely from the content-addressed result cache.
#
# This is the out-of-process counterpart of
# TestDistributedOptimizeIdentity: real binaries, real HTTP, real
# process boundaries.  An optimizer job ships self-contained cells —
# each carries the full spec, and seeds derive positionally from the
# cell name — so where a cell executes cannot affect its bytes.
set -euo pipefail

ADDR_LOCAL="127.0.0.1:8357"
ADDR_DIST="127.0.0.1:8358"
DATA="$(mktemp -d)"
LOG="$DATA/smoke.log"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmworker" ./cmd/wmmworker
go build -o "$DATA/wmmctl" ./cmd/wmmctl

# Two JVM strategies on ARMv8 with two fence-cost fits: 6 cells
# (2 soundness gates + 2 measurements + 2 cost-model fits) — enough to
# split across both workers, fast enough for CI.  The expected outcome
# is the paper's headline result: jdk9-acqrel sound and faster than the
# jdk8 barrier placement.
SPEC='{"platform":"jvm","arch":"armv8","strategies":["jdk8-barriers","jdk9-acqrel"],"samples":3,"fit_costs":[8,32],"workload":{"max_cycles":60000},"seed":7,"parallel":2}'

# --- Baseline: one ordinary wmmd doing the work itself. --------------
"$DATA/wmmd" -addr "$ADDR_LOCAL" >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 30s ready \
  || { echo "optimize-smoke: local wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

JOB_LOCAL=$("$DATA/wmmctl" -server "http://$ADDR_LOCAL" optimize-submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 10m optimize-wait "$JOB_LOCAL" \
  || { echo "optimize-smoke: local optimizer job failed" >&2; cat "$LOG" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" optimize-report "$JOB_LOCAL" > "$DATA/local.json"

# --- Distributed: a pure coordinator plus two worker processes. ------
"$DATA/wmmd" -addr "$ADDR_DIST" -local-slots -1 -lease-ttl 5s >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 30s ready \
  || { echo "optimize-smoke: coordinator never became ready" >&2; cat "$LOG" >&2; exit 1; }

"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w1 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w2 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)

JOB_DIST=$("$DATA/wmmctl" -server "http://$ADDR_DIST" optimize-submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 10m optimize-wait "$JOB_DIST" \
  || { echo "optimize-smoke: distributed optimizer job failed" >&2; cat "$LOG" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_DIST" optimize-report "$JOB_DIST" > "$DATA/dist.json"

# --- The acceptance criterion: byte-identical canonical reports. -----
if ! diff -q "$DATA/local.json" "$DATA/dist.json" >/dev/null; then
  echo "optimize-smoke: canonical report diverged between local and sharded execution" >&2
  diff "$DATA/local.json" "$DATA/dist.json" >&2 || true
  exit 1
fi

# The report must reproduce the paper's result: the JDK9 acquire/release
# placement survives the soundness gate and wins on performance.
if ! grep -q '"best": "jdk9-acqrel"' "$DATA/dist.json"; then
  echo "optimize-smoke: report does not pick jdk9-acqrel as best" >&2
  cat "$DATA/dist.json" >&2
  exit 1
fi

# And the work really went to the workers: the coordinator has no local
# slots, so all 6 cells must have completed in "remote" mode.
REMOTE=$(curl -fsS "http://$ADDR_DIST/metrics" \
  | sed -n 's/^wmm_dispatch_jobs_completed_total{mode="remote"} \([0-9.]*\)$/\1/p')
if [ "${REMOTE:-0}" != "6" ]; then
  echo "optimize-smoke: expected 6 remote cell completions, got '${REMOTE:-none}'" >&2
  exit 1
fi

# --- Content-addressed reuse: the rerun never touches a worker. ------
JOB_AGAIN=$("$DATA/wmmctl" -server "http://$ADDR_DIST" optimize-submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 10m optimize-wait "$JOB_AGAIN" \
  || { echo "optimize-smoke: cached rerun failed" >&2; cat "$LOG" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_DIST" optimize-report "$JOB_AGAIN" > "$DATA/again.json"

if ! diff -q "$DATA/dist.json" "$DATA/again.json" >/dev/null; then
  echo "optimize-smoke: cached rerun's report diverged from the executed one" >&2
  diff "$DATA/dist.json" "$DATA/again.json" >&2 || true
  exit 1
fi
CACHED=$(curl -fsS "http://$ADDR_DIST/metrics" \
  | sed -n 's/^wmm_dispatch_jobs_completed_total{mode="cache"} \([0-9.]*\)$/\1/p')
if [ "${CACHED:-0}" != "6" ]; then
  echo "optimize-smoke: expected 6 cache-served cells on the rerun, got '${CACHED:-none}'" >&2
  exit 1
fi
REMOTE2=$(curl -fsS "http://$ADDR_DIST/metrics" \
  | sed -n 's/^wmm_dispatch_jobs_completed_total{mode="remote"} \([0-9.]*\)$/\1/p')
if [ "${REMOTE2:-0}" != "6" ]; then
  echo "optimize-smoke: rerun re-executed cells remotely (remote count ${REMOTE2:-none}, want still 6)" >&2
  exit 1
fi

echo "optimize-smoke: ok ($JOB_DIST: 6 cells across 2 workers, report identical to local; rerun $JOB_AGAIN fully cache-served)"
