#!/usr/bin/env bash
# cache-smoke.sh — submit the same sweep twice to a real wmmd and assert
# the second run is served from the content-addressed result cache:
# byte-identical canonical JSON, cache provenance on every experiment,
# and dedupe hits visible on /metrics.
#
# This is the out-of-process counterpart of TestDispatchCacheReuse: the
# Go test drives an in-process server; this script exercises the real
# binary, the persistent cache layer under -data, and the /metrics
# exposition CI operators would actually alert on.
set -euo pipefail

ADDR="127.0.0.1:8353"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/wmmd.log"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmctl" ./cmd/wmmctl
CTL="$DATA/wmmctl -server $BASE"

"$DATA/wmmd" -addr "$ADDR" -data "$DATA/runs" >>"$LOG" 2>&1 &
PID=$!
$CTL -timeout 30s ready || { echo "cache-smoke: wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

SPEC='{"experiments":["fig4","txt3"],"short":true,"samples":2,"seed":3,"parallel":2}'

RUN1=$($CTL submit "$SPEC")
$CTL -timeout 10m wait "$RUN1" || { echo "cache-smoke: first run failed" >&2; cat "$LOG" >&2; exit 1; }
$CTL canonical "$RUN1" > "$DATA/first.json"

RUN2=$($CTL submit "$SPEC")
$CTL -timeout 10m wait "$RUN2" || { echo "cache-smoke: second run failed" >&2; cat "$LOG" >&2; exit 1; }
$CTL canonical "$RUN2" > "$DATA/second.json"

# The cached pass must be byte-identical to the executed pass.
diff -u "$DATA/first.json" "$DATA/second.json" \
  || { echo "cache-smoke: cached run diverged from executed run" >&2; exit 1; }

# Every experiment of the second run carries cache provenance.
STATUS=$($CTL status "$RUN2")
CACHED=$(echo "$STATUS" | grep -c '"cache": *"' || true)
[ "$CACHED" -ge 2 ] || {
  echo "cache-smoke: second run has $CACHED cache-provenance entries, want >= 2" >&2
  echo "$STATUS" >&2
  exit 1
}

# The dedupe is visible on /metrics: at least the second run's two
# experiments must have hit the result cache.
METRICS=$(curl -fsS "$BASE/metrics")
HITS=$(echo "$METRICS" | awk '/^wmm_resultcache_hits_total({[^}]*})? /{sum += $2} END {print int(sum)}')
[ "${HITS:-0}" -ge 2 ] || {
  echo "cache-smoke: wmm_resultcache_hits_total = ${HITS:-missing}, want >= 2" >&2
  echo "$METRICS" | grep wmm_resultcache >&2 || true
  exit 1
}

echo "cache-smoke: ok ($RUN2 served from cache, $HITS hits, canonical JSON identical)"
