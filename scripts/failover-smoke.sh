#!/usr/bin/env bash
# failover-smoke.sh — kill -9 the active HA coordinator with work in
# flight and assert the standby takes over the lease, resumes the run,
# and finishes it byte-identical to an uninterrupted local run.
#
# This is the out-of-process counterpart of TestHAFailover plus
# TestCrashResumeDeterminism in one: two real wmmd processes in -ha mode
# share one -addr and one -data directory (segment store), two real
# wmmworker processes execute the jobs, and wmmctl — through the typed
# client's 503/dial retry — rides out the failover window without any
# special-casing.  The final assertion is the strongest one the system
# offers: the canonical JSON of the failed-over run diffs clean against
# the same spec executed on a plain single-process wmmd.
set -euo pipefail

ADDR="127.0.0.1:8357"        # shared by leader and standby; only the leader binds
OPS_A="127.0.0.1:8358"
OPS_B="127.0.0.1:8359"
ADDR_REF="127.0.0.1:8360"
DATA="$(mktemp -d)"
LOG_A="$DATA/node-a.log"
LOG_B="$DATA/node-b.log"
LOG="$DATA/smoke.log"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmworker" ./cmd/wmmworker
go build -o "$DATA/wmmctl" ./cmd/wmmctl
CTL="$DATA/wmmctl -server http://$ADDR"

# fig4 finishes quickly and checkpoints; ext-c11 takes far longer, so
# the kill lands while it is still in flight.
SPEC='{"experiments":["fig4","ext-c11"],"short":true,"samples":1,"seed":3,"parallel":2}'

# role OPS_URL — the "role" field of an ops endpoint's /readyz, or
# "down" when the process does not answer.
role() {
  # No -f: a standby's /readyz is a 503 whose body carries the role.
  curl -sS --max-time 2 "http://$1/readyz" 2>/dev/null \
    | sed -n 's/.*"role": *"\([a-z]*\)".*/\1/p' || true
}

# --- Reference: the same spec on a plain, uninterrupted wmmd. --------
"$DATA/wmmd" -addr "$ADDR_REF" >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_REF" -timeout 30s ready \
  || { echo "failover-smoke: reference wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }
RUN_REF=$("$DATA/wmmctl" -server "http://$ADDR_REF" submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_REF" -timeout 15m wait "$RUN_REF" \
  || { echo "failover-smoke: reference run failed" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_REF" canonical "$RUN_REF" > "$DATA/ref.json"

# --- HA pair over one shared segment store, plus two workers. --------
# -max-batch 1 splits the two jobs across the two workers, so fig4's
# result uploads (and checkpoints) while ext-c11 is still in flight.
HA_FLAGS="-data $DATA/runs -store segment -ha -ha-ttl 1s -local-slots -1 -lease-ttl 2s -max-batch 1"
"$DATA/wmmd" $HA_FLAGS -addr "$ADDR" -ha-id node-a -ops-addr "$OPS_A" >>"$LOG_A" 2>&1 &
PID_A=$!
PIDS+=($PID_A)
$CTL -timeout 30s ready \
  || { echo "failover-smoke: node-a never became leader" >&2; cat "$LOG_A" >&2; exit 1; }

"$DATA/wmmd" $HA_FLAGS -addr "$ADDR" -ha-id node-b -ops-addr "$OPS_B" >>"$LOG_B" 2>&1 &
PIDS+=($!)

# The pair must agree on who leads before we inject the fault.
[ "$(role "$OPS_A")" = "leader" ] || { echo "failover-smoke: node-a ops does not report leader" >&2; exit 1; }
for _ in $(seq 1 50); do
  [ "$(role "$OPS_B")" = "standby" ] && break
  sleep 0.2
done
[ "$(role "$OPS_B")" = "standby" ] || { echo "failover-smoke: node-b never reported standby" >&2; cat "$LOG_B" >&2; exit 1; }

"$DATA/wmmworker" -coordinator "http://$ADDR" -id smoke-w1 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmworker" -coordinator "http://$ADDR" -id smoke-w2 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)

RUN=$($CTL submit "$SPEC")
[ -n "$RUN" ] || { echo "failover-smoke: no run id" >&2; exit 1; }

# Wait until fig4 is checkpointed but ext-c11 is still running, then
# kill the leader dead — no shutdown, no lease release.
for _ in $(seq 1 600); do
  ST=$($CTL status "$RUN" 2>/dev/null || true)
  if echo "$ST" | grep -q '"completed": *1'; then break; fi
  sleep 0.2
done
echo "$ST" | grep -q '"completed": *1' \
  || { echo "failover-smoke: run made no progress before timeout" >&2; cat "$LOG_A" >&2; exit 1; }
echo "$ST" | grep -q '"state": *"running"' \
  || { echo "failover-smoke: run finished before the kill; nothing to fail over" >&2; exit 1; }
kill -9 "$PID_A"
wait "$PID_A" 2>/dev/null || true

# The standby must notice the dead lease, take over, and resume the
# interrupted run from its checkpoint.
TOOK_OVER=
for _ in $(seq 1 150); do
  if [ "$(role "$OPS_B")" = "leader" ]; then TOOK_OVER=1; break; fi
  sleep 0.2
done
[ -n "$TOOK_OVER" ] || { echo "failover-smoke: node-b never took over" >&2; cat "$LOG_B" >&2; exit 1; }
grep -q "interrupted runs resumed" "$LOG_B" \
  || { echo "failover-smoke: node-b did not replay the store on promotion" >&2; cat "$LOG_B" >&2; exit 1; }

# wmmctl rides out the window on the SAME shared address: the client
# retries refused connections and 503s with capped backoff.
if ! $CTL -timeout 15m wait "$RUN"; then
  echo "failover-smoke: run did not finish after failover" >&2
  $CTL status "$RUN" >&2 || true
  cat "$LOG_B" >&2
  exit 1
fi
STATUS=$($CTL status "$RUN")
echo "$STATUS" | grep -q '"resumed": *true' \
  || { echo "failover-smoke: run not marked resumed on the new leader" >&2; exit 1; }

# --- The acceptance criterion: byte-identical canonical JSON. --------
$CTL canonical "$RUN" > "$DATA/ha.json"
if ! diff -q "$DATA/ref.json" "$DATA/ha.json" >/dev/null; then
  echo "failover-smoke: canonical JSON diverged between uninterrupted and failed-over execution" >&2
  diff "$DATA/ref.json" "$DATA/ha.json" >&2 || true
  exit 1
fi

echo "failover-smoke: ok ($RUN survived kill -9 of the leader; node-b resumed it, canonical JSON identical)"
