#!/usr/bin/env bash
# resume-smoke.sh — kill -9 a wmmd mid-run and assert the restarted
# server resumes the run from its checkpoint and finishes it.
#
# This is the out-of-process counterpart of TestCrashResumeDeterminism:
# the Go test simulates the crash with a graceful Shutdown (which
# deliberately writes no terminal record); this script kills the real
# binary with SIGKILL, so the whole chain — fsynced checkpoints, torn
# tails, startup replay — is exercised against an actual dead process.
#
# All API interaction goes through wmmctl (the typed wmm/client), not
# hand-rolled curl/sed: the smoke test exercises the same client real
# consumers use.
set -euo pipefail

ADDR="127.0.0.1:8351"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/wmmd.log"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmctl" ./cmd/wmmctl
CTL="$DATA/wmmctl -server $BASE"

"$DATA/wmmd" -addr "$ADDR" -data "$DATA/runs" >>"$LOG" 2>&1 &
PID=$!
$CTL -timeout 30s ready || { echo "resume-smoke: wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

# fig4 is quick and checkpoints early; ext-c11 takes far longer — the
# kill lands while it is still running.
RUN=$($CTL submit '{"experiments":["fig4","ext-c11"],"short":true,"samples":1,"seed":3,"parallel":2}')
[ -n "$RUN" ] || { echo "resume-smoke: no run id" >&2; exit 1; }

# Wait for the first durable checkpoint, then crash hard.
FILE="$DATA/runs/$RUN.jsonl"
for _ in $(seq 1 300); do
  if grep -q '"rec":"experiment"' "$FILE" 2>/dev/null; then break; fi
  sleep 0.2
done
grep -q '"rec":"experiment"' "$FILE" || { echo "resume-smoke: no checkpoint before timeout" >&2; cat "$LOG" >&2; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

if grep -q '"rec":"end"' "$FILE"; then
  echo "resume-smoke: run finished before the kill; nothing to resume" >&2
  exit 1
fi

# Restart over the same data directory: the run must resume and finish.
"$DATA/wmmd" -addr "$ADDR" -data "$DATA/runs" >>"$LOG" 2>&1 &
PID=$!
$CTL -timeout 30s ready || { echo "resume-smoke: restarted wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }
grep -q "1 interrupted runs resumed" "$LOG" || { echo "resume-smoke: restart did not resume" >&2; cat "$LOG" >&2; exit 1; }

if ! $CTL -timeout 15m wait "$RUN"; then
  echo "resume-smoke: resumed run did not finish cleanly" >&2
  $CTL status "$RUN" >&2 || true
  exit 1
fi

STATUS=$($CTL status "$RUN")
echo "$STATUS" | grep -q '"resumed": *true' || { echo "resume-smoke: run not marked resumed" >&2; exit 1; }
echo "$STATUS" | grep -q '"completed": *2' || { echo "resume-smoke: run incomplete: $STATUS" >&2; exit 1; }

echo "resume-smoke: ok ($RUN resumed after SIGKILL and completed)"
