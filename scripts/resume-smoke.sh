#!/usr/bin/env bash
# resume-smoke.sh — kill -9 a wmmd mid-run and assert the restarted
# server resumes the run from its checkpoint and finishes it.
#
# This is the out-of-process counterpart of TestCrashResumeDeterminism:
# the Go test simulates the crash with a graceful Shutdown (which
# deliberately writes no terminal record); this script kills the real
# binary with SIGKILL, so the whole chain — fsynced checkpoints, torn
# tails, startup replay — is exercised against an actual dead process.
set -euo pipefail

ADDR="127.0.0.1:8351"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/wmmd.log"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd

wait_ready() {
  for _ in $(seq 1 100); do
    if curl -fsS "$BASE/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "resume-smoke: wmmd never became ready" >&2
  cat "$LOG" >&2
  return 1
}

"$DATA/wmmd" -addr "$ADDR" -data "$DATA/runs" >>"$LOG" 2>&1 &
PID=$!
wait_ready

# fig4 is quick and checkpoints early; ext-c11 takes far longer — the
# kill lands while it is still running.
RUN=$(curl -fsS "$BASE/runs" -d '{"experiments":["fig4","ext-c11"],"short":true,"samples":1,"seed":3,"parallel":2}' \
  | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p')
[ -n "$RUN" ] || { echo "resume-smoke: no run id" >&2; exit 1; }

# Wait for the first durable checkpoint, then crash hard.
FILE="$DATA/runs/$RUN.jsonl"
for _ in $(seq 1 300); do
  if grep -q '"rec":"experiment"' "$FILE" 2>/dev/null; then break; fi
  sleep 0.2
done
grep -q '"rec":"experiment"' "$FILE" || { echo "resume-smoke: no checkpoint before timeout" >&2; cat "$LOG" >&2; exit 1; }
kill -9 "$PID"
wait "$PID" 2>/dev/null || true

if grep -q '"rec":"end"' "$FILE"; then
  echo "resume-smoke: run finished before the kill; nothing to resume" >&2
  exit 1
fi

# Restart over the same data directory: the run must resume and finish.
"$DATA/wmmd" -addr "$ADDR" -data "$DATA/runs" >>"$LOG" 2>&1 &
PID=$!
wait_ready
grep -q "1 interrupted runs resumed" "$LOG" || { echo "resume-smoke: restart did not resume" >&2; cat "$LOG" >&2; exit 1; }

for _ in $(seq 1 900); do
  STATE=$(curl -fsS "$BASE/runs/$RUN" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -n1)
  [ "$STATE" = "running" ] || break
  sleep 1
done
if [ "$STATE" != "done" ]; then
  echo "resume-smoke: resumed run ended '$STATE'" >&2
  curl -fsS "$BASE/runs/$RUN" >&2 || true
  exit 1
fi

STATUS=$(curl -fsS "$BASE/runs/$RUN")
echo "$STATUS" | grep -q '"resumed": *true' || { echo "resume-smoke: run not marked resumed" >&2; exit 1; }
COMPLETED=$(echo "$STATUS" | sed -n 's/.*"completed": *\([0-9]*\).*/\1/p' | head -n1)
[ "$COMPLETED" = "2" ] || { echo "resume-smoke: completed=$COMPLETED, want 2" >&2; exit 1; }

echo "resume-smoke: ok ($RUN resumed after SIGKILL and completed)"
