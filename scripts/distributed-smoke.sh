#!/usr/bin/env bash
# distributed-smoke.sh — run the same spec on a plain local wmmd and on
# a coordinator-only wmmd served by two real wmmworker processes, and
# assert the canonical run JSON is byte-identical.
#
# This is the out-of-process counterpart of
# TestDistributedCanonicalIdentity: real binaries, real HTTP, real
# process boundaries.  Positional seed derivation is what makes the
# assertion possible — a job's results do not depend on which process
# executes it.
set -euo pipefail

ADDR_LOCAL="127.0.0.1:8353"
ADDR_DIST="127.0.0.1:8354"
DATA="$(mktemp -d)"
LOG="$DATA/smoke.log"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmworker" ./cmd/wmmworker
go build -o "$DATA/wmmctl" ./cmd/wmmctl

SPEC='{"experiments":["fig4","txt3"],"short":true,"samples":2,"seed":3,"parallel":2}'

# --- Baseline: one ordinary wmmd doing the work itself. --------------
"$DATA/wmmd" -addr "$ADDR_LOCAL" >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 30s ready \
  || { echo "distributed-smoke: local wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

RUN_LOCAL=$("$DATA/wmmctl" -server "http://$ADDR_LOCAL" submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 15m wait "$RUN_LOCAL" \
  || { echo "distributed-smoke: local run failed" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" canonical "$RUN_LOCAL" > "$DATA/local.json"

# --- Distributed: a pure coordinator plus two worker processes. ------
"$DATA/wmmd" -addr "$ADDR_DIST" -local-slots -1 -lease-ttl 5s >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 30s ready \
  || { echo "distributed-smoke: coordinator never became ready" >&2; cat "$LOG" >&2; exit 1; }

"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w1 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w2 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)

RUN_DIST=$("$DATA/wmmctl" -server "http://$ADDR_DIST" submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 15m wait "$RUN_DIST" \
  || { echo "distributed-smoke: distributed run failed" >&2; cat "$LOG" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_DIST" canonical "$RUN_DIST" > "$DATA/dist.json"

# --- The acceptance criterion: byte-identical canonical JSON. --------
if ! diff -q "$DATA/local.json" "$DATA/dist.json" >/dev/null; then
  echo "distributed-smoke: canonical JSON diverged between local and sharded execution" >&2
  diff "$DATA/local.json" "$DATA/dist.json" >&2 || true
  exit 1
fi

# And the work really went to the workers: the coordinator has no local
# slots, so every job must have completed in "remote" mode.
REMOTE=$(curl -fsS "http://$ADDR_DIST/metrics" \
  | sed -n 's/^wmm_dispatch_jobs_completed_total{mode="remote"} \([0-9.]*\)$/\1/p')
case "$REMOTE" in
  ''|0) echo "distributed-smoke: no remote job completions recorded (got '${REMOTE:-none}')" >&2; exit 1 ;;
esac

echo "distributed-smoke: ok ($RUN_DIST sharded across 2 workers, canonical JSON identical, $REMOTE remote jobs)"
