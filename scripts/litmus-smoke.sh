#!/usr/bin/env bash
# litmus-smoke.sh — run the same generated litmus campaign on a plain
# local wmmd and on a coordinator-only wmmd served by two real
# wmmworker processes, and assert the canonical campaign JSON is
# byte-identical.
#
# This is the out-of-process counterpart of
# TestDistributedLitmusIdentity: real binaries, real HTTP, real process
# boundaries.  A campaign ships only shard descriptors — each worker
# regenerates its slice of the batch from (gen_seed, count,
# max_threads), so where a shard executes cannot affect its bytes.
set -euo pipefail

ADDR_LOCAL="127.0.0.1:8355"
ADDR_DIST="127.0.0.1:8356"
DATA="$(mktemp -d)"
LOG="$DATA/smoke.log"
PIDS=()
trap 'kill -9 "${PIDS[@]}" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmworker" ./cmd/wmmworker
go build -o "$DATA/wmmctl" ./cmd/wmmctl

# 500 tests in 10 shards of 50, two trials each: enough to split across
# both workers, fast enough for CI.
SPEC='{"arch":"armv8","gen_seed":7,"count":500,"trials":2,"seed":3,"shard_size":50,"parallel":4}'

# --- Baseline: one ordinary wmmd doing the work itself. --------------
"$DATA/wmmd" -addr "$ADDR_LOCAL" >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 30s ready \
  || { echo "litmus-smoke: local wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

RUN_LOCAL=$("$DATA/wmmctl" -server "http://$ADDR_LOCAL" litmus-submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" -timeout 15m litmus-wait "$RUN_LOCAL" \
  || { echo "litmus-smoke: local campaign failed" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_LOCAL" litmus-canonical "$RUN_LOCAL" > "$DATA/local.json"

# --- Distributed: a pure coordinator plus two worker processes. ------
"$DATA/wmmd" -addr "$ADDR_DIST" -local-slots -1 -lease-ttl 5s >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 30s ready \
  || { echo "litmus-smoke: coordinator never became ready" >&2; cat "$LOG" >&2; exit 1; }

"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w1 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)
"$DATA/wmmworker" -coordinator "http://$ADDR_DIST" -id smoke-w2 -poll 100ms >>"$LOG" 2>&1 &
PIDS+=($!)

RUN_DIST=$("$DATA/wmmctl" -server "http://$ADDR_DIST" litmus-submit "$SPEC")
"$DATA/wmmctl" -server "http://$ADDR_DIST" -timeout 15m litmus-wait "$RUN_DIST" \
  || { echo "litmus-smoke: distributed campaign failed" >&2; cat "$LOG" >&2; exit 1; }
"$DATA/wmmctl" -server "http://$ADDR_DIST" litmus-canonical "$RUN_DIST" > "$DATA/dist.json"

# --- The acceptance criterion: byte-identical canonical JSON. --------
if ! diff -q "$DATA/local.json" "$DATA/dist.json" >/dev/null; then
  echo "litmus-smoke: canonical JSON diverged between local and sharded execution" >&2
  diff "$DATA/local.json" "$DATA/dist.json" >&2 || true
  exit 1
fi

# And the work really went to the workers: the coordinator has no local
# slots, so all 10 shards must have completed in "remote" mode.
REMOTE=$(curl -fsS "http://$ADDR_DIST/metrics" \
  | sed -n 's/^wmm_dispatch_jobs_completed_total{mode="remote"} \([0-9.]*\)$/\1/p')
if [ "${REMOTE:-0}" != "10" ]; then
  echo "litmus-smoke: expected 10 remote shard completions, got '${REMOTE:-none}'" >&2
  exit 1
fi

echo "litmus-smoke: ok ($RUN_DIST: 500 generated tests in 10 shards across 2 workers, canonical JSON identical)"
