#!/usr/bin/env bash
# loadtest.sh — drive a tenant-quota'd wmmd with many concurrent wmmctl
# clients across several tenants and assert the admission layer holds:
# every submitted run finishes, no tenant is starved, and the per-tenant
# accounting shows up on /metrics.
#
# This is a load test, not a benchmark: the point is concurrency against
# the fair-share dequeue and the per-tenant quotas (wmmctl's client
# retries 429 + Retry-After internally, so a saturated tenant's
# submissions back off and land instead of failing).  Tune with:
#
#   CLIENTS  concurrent submitters per tenant   (default 3)
#   ROUNDS   runs each submitter pushes through (default 3)
set -euo pipefail

CLIENTS="${CLIENTS:-3}"
ROUNDS="${ROUNDS:-3}"
TENANTS=(gold silver bronze)

ADDR="127.0.0.1:8361"
BASE="http://$ADDR"
DATA="$(mktemp -d)"
LOG="$DATA/wmmd.log"
trap 'kill -9 "$PID" 2>/dev/null || true; rm -rf "$DATA"' EXIT

go build -o "$DATA/wmmd" ./cmd/wmmd
go build -o "$DATA/wmmctl" ./cmd/wmmctl

# Tight quotas so the load actually trips admission control, and skewed
# weights so the dequeue order is the fair-share path, not plain FIFO.
"$DATA/wmmd" -addr "$ADDR" -tenant-max-queued 4 -tenant-max-running 2 \
  -tenant-weights "gold=3,silver=2" >>"$LOG" 2>&1 &
PID=$!
"$DATA/wmmctl" -server "$BASE" -timeout 30s ready \
  || { echo "loadtest: wmmd never became ready" >&2; cat "$LOG" >&2; exit 1; }

# submitter TENANT INDEX — push ROUNDS runs through one client, each a
# distinct seed so the runs are real work, not one cache entry.  The
# client absorbs short saturation bursts itself (429 + Retry-After);
# when the tenant stays at quota longer than one client's retry budget,
# the submit fails cleanly and this loop resubmits — the same thing a
# real batch driver does.
submitter() {
  local tenant=$1 idx=$2 seed run
  for r in $(seq 1 "$ROUNDS"); do
    seed=$((idx * 1000 + r))
    run=
    for _ in $(seq 1 60); do
      run=$("$DATA/wmmctl" -server "$BASE" -tenant "$tenant" \
        submit "{\"experiments\":[\"fig4\"],\"short\":true,\"samples\":1,\"seed\":$seed}" 2>/dev/null) \
        && break
      run=
      sleep 1
    done
    [ -n "$run" ] || { echo "loadtest: $tenant submit never admitted" >&2; return 1; }
    "$DATA/wmmctl" -server "$BASE" -timeout 10m wait "$run" >/dev/null || return 1
    echo "$tenant $run" >> "$DATA/done.$tenant"
  done
}

echo "loadtest: ${#TENANTS[@]} tenants x $CLIENTS clients x $ROUNDS runs against $BASE"
FAIL=0
WORKER_PIDS=()
i=0
for t in "${TENANTS[@]}"; do
  for _ in $(seq 1 "$CLIENTS"); do
    i=$((i + 1))
    submitter "$t" "$i" &
    WORKER_PIDS+=($!)
  done
done
for p in "${WORKER_PIDS[@]}"; do
  wait "$p" || FAIL=1
done
[ "$FAIL" = 0 ] || { echo "loadtest: a submitter failed" >&2; cat "$LOG" >&2; exit 1; }

# Every tenant must have pushed its full quota of runs through.
WANT=$((CLIENTS * ROUNDS))
for t in "${TENANTS[@]}"; do
  GOT=$(wc -l < "$DATA/done.$t" 2>/dev/null || echo 0)
  [ "$GOT" -eq "$WANT" ] || { echo "loadtest: tenant $t finished $GOT/$WANT runs" >&2; exit 1; }
done

# And the accounting is visible: each tenant left a mark on /metrics
# (the running gauge exists per tenant; rejections only if quotas hit).
METRICS=$(curl -fsS "$BASE/metrics")
for t in "${TENANTS[@]}"; do
  echo "$METRICS" | grep -q "wmm_tenant_.*tenant=\"$t\"" \
    || { echo "loadtest: no wmm_tenant_* metrics for tenant $t" >&2; exit 1; }
done
REJECTED=$(echo "$METRICS" | awk '/^wmm_tenant_rejected_total\{/ {sum += $NF} END {print sum + 0}')

echo "loadtest: ok ($((WANT * ${#TENANTS[@]})) runs across ${#TENANTS[@]} tenants, ${REJECTED:-0} quota refusals absorbed by client retry)"
